#include "core/driver.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "aggregate/agreement.h"
#include "common/logging.h"
#include "hitgen/pair_hit_generator.h"

namespace crowder {
namespace core {

namespace {

using crowd::PairKey;  // the seam's shared pair normalization

std::string PairName(uint32_t a, uint32_t b) {
  return "(" + std::to_string(a) + "," + std::to_string(b) + ")";
}

}  // namespace

WorkflowDriver::WorkflowDriver(WorkflowConfig config) : config_(std::move(config)) {}
WorkflowDriver::~WorkflowDriver() = default;

Status WorkflowDriver::Start(const data::Dataset& dataset) {
  if (phase_ != Phase::kIdle) return Status::InvalidArgument("Start called twice");
  CROWDER_RETURN_NOT_OK(ValidateWorkflowConfig(config_));
  if (config_.filter_workers && filter_ == nullptr) {
    owned_filter_ = std::make_unique<crowd::ApprovalRateWorkerFilter>(config_.filter);
    filter_ = owned_filter_.get();
  }
  if (adaptive()) {
    policy_ = MakeQuestionPolicy(config_.question_policy);
    closure_ = std::make_unique<graph::AnswerClosure>(
        static_cast<uint32_t>(dataset.table.num_records()));
  }
  state_ = std::make_unique<WorkflowState>(config_, dataset);
  state_->result.total_matches = dataset.CountMatchingPairs();
  if (state_->result.total_matches == 0) {
    return Status::InvalidArgument("dataset has no matching pairs; nothing to resolve");
  }

  // The machine pass and HIT generation run eagerly, as pipeline stages (the
  // crowd rounds and aggregation continue the same PipelineStats record).
  Pipeline pipeline;
  pipeline.Add(std::make_unique<MachinePassStage>()).Add(std::make_unique<HitGenStage>());
  CROWDER_RETURN_NOT_OK(pipeline.Run(state_.get(), &state_->result.pipeline_stats));

  // Round-source setup. Mirrors the pre-driver crowd stage exactly: the
  // pair route fixes the partition/shard layout up front; the cluster route
  // sizes HIT ranges so one range's pair context stays within the partition
  // capacity (a HIT of k records references at most k(k-1)/2 pairs).
  const uint64_t total = state_->result.num_candidate_pairs;
  if (config_.execution_mode == ExecutionMode::kStreaming && total > 0) {
    if (config_.hit_type == HitType::kPairBased) {
      aligned_capacity_ =
          AlignedPartitionCapacity(state_->partition_capacity, config_.pairs_per_hit);
      state_->votes = std::make_unique<VoteShardStore>(
          config_.memory_budget_bytes, TileShardCounts(total, aligned_capacity_));
      state_->result.pipeline_stats.crowd_partitions = state_->votes->num_shards();
      CROWDER_ASSIGN_OR_RETURN(auto cursor, state_->stream.OpenSortedCursor());
      cursor_.emplace(std::move(cursor));
    } else {
      const uint64_t capacity = state_->partition_capacity;
      state_->votes = std::make_unique<VoteShardStore>(config_.memory_budget_bytes,
                                                       TileShardCounts(total, capacity));
      const uint64_t k = config_.cluster_size;
      const uint64_t context_per_hit = std::max<uint64_t>(1, k * (k - 1) / 2);
      hits_per_range_ =
          capacity == UINT64_MAX
              ? std::max<size_t>(state_->cluster_hits.size(), 1)
              : static_cast<size_t>(std::max<uint64_t>(1, capacity / context_per_hit));
      CROWDER_RETURN_NOT_OK(BuildClusterRangeIndex());
    }
  }
  crowd_timer_.Reset();
  return Advance();
}

void WorkflowDriver::IndexRoundPairs(const std::vector<similarity::ScoredPair>& pairs) {
  round_pair_index_.clear();
  round_pair_index_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    round_pair_index_[PairKey(pairs[i].a, pairs[i].b)] = i;
  }
}

Status WorkflowDriver::PrepareMaterializedRound() {
  if (next_hit_ > 0) return Status::OK();  // the single all-HITs round was served
  const auto& pairs = state_->result.candidate_pairs;
  if (state_->pair_hits.empty() && state_->cluster_hits.empty()) return Status::OK();
  IndexRoundPairs(pairs);
  round_global_index_.resize(pairs.size());
  std::iota(round_global_index_.begin(), round_global_index_.end(), uint64_t{0});
  vote_table_.assign(pairs.size(), {});
  pending_.first_hit = 0;
  pending_.pairs = &pairs;
  if (!state_->pair_hits.empty()) {
    pending_.pair_hits = &state_->pair_hits;
  } else {
    pending_.cluster_hits = &state_->cluster_hits;
  }
  return Status::OK();
}

Status WorkflowDriver::PreparePairPartitionRound() {
  const uint64_t total = state_->result.num_candidate_pairs;
  if (next_pair_base_ >= total) return Status::OK();
  const uint64_t want = std::min<uint64_t>(aligned_capacity_, total - next_pair_base_);
  round_pairs_.reserve(static_cast<size_t>(want));
  CROWDER_ASSIGN_OR_RETURN(const size_t got,
                           cursor_->Next(static_cast<size_t>(want), &round_pairs_));
  if (got == 0) return Status::OK();

  // Pack this partition's HITs — identical to the materialized pack because
  // the partition capacity is a multiple of pairs_per_hit.
  hitgen::PairHitPacker packer(config_.pairs_per_hit);
  std::vector<graph::Edge> edges;
  edges.reserve(round_pairs_.size());
  for (const auto& p : round_pairs_) edges.push_back({p.a, p.b});
  CROWDER_RETURN_NOT_OK(packer.Add(edges));
  CROWDER_ASSIGN_OR_RETURN(round_pair_hits_, packer.Finish());

  IndexRoundPairs(round_pairs_);
  round_global_index_.resize(round_pairs_.size());
  std::iota(round_global_index_.begin(), round_global_index_.end(), next_pair_base_);
  pending_.first_hit = next_hit_;
  pending_.pairs = &round_pairs_;
  pending_.pair_hits = &round_pair_hits_;
  next_pair_base_ += got;
  return Status::OK();
}

Status WorkflowDriver::BuildClusterRangeIndex() {
  WallTimer index_timer;
  const auto& hits = state_->cluster_hits;
  const ComponentBucketPlan& plan = *state_->buckets;
  const size_t num_ranges = (hits.size() + hits_per_range_ - 1) / hits_per_range_;

  // Per-record ascending, deduplicated list of the HIT ranges referencing
  // it: hits are scanned in range order, so the lists stay sorted and a
  // last-element check deduplicates. A record's list has an entry for range
  // r exactly when the old per-round re-scan would have marked the record
  // for r's round.
  std::vector<std::vector<uint32_t>> record_ranges(state_->dataset->table.num_records());
  for (size_t h = 0; h < hits.size(); ++h) {
    const uint32_t range = static_cast<uint32_t>(h / hits_per_range_);
    for (uint32_t r : hits[h].records) {
      auto& list = record_ranges[r];
      if (list.empty() || list.back() != range) list.push_back(range);
    }
  }

  // Join each bucketed pair against its records' range lists in one sorted
  // pass over ALL buckets, ascending. The replay order per range shard —
  // bucket ascending, append order within a bucket — is exactly what the
  // old route produced: it scanned the round's touched buckets sorted
  // ascending, a pair lives only in its own component's bucket, and an
  // untouched bucket can contribute no pair whose records are both in the
  // round's HITs. Order matters because PrepareRepairRound re-posts
  // deficient pairs in context order.
  range_pairs_ = std::make_unique<ShardedSpillStore<IndexedPair>>(config_.memory_budget_bytes);
  range_pairs_->AddShards(num_ranges);
  for (uint32_t bucket = 0; bucket < plan.num_buckets(); ++bucket) {
    CROWDER_RETURN_NOT_OK(
        state_->bucket_pairs->Scan(bucket, [&](const std::vector<IndexedPair>& block) {
          for (const auto& ip : block) {
            // A pair belongs to range r's context iff both records appear in
            // r's HITs: intersect the two ascending range lists.
            const auto& ra = record_ranges[ip.pair.a];
            const auto& rb = record_ranges[ip.pair.b];
            size_t i = 0;
            size_t j = 0;
            while (i < ra.size() && j < rb.size()) {
              if (ra[i] < rb[j]) {
                ++i;
              } else if (rb[j] < ra[i]) {
                ++j;
              } else {
                CROWDER_RETURN_NOT_OK(range_pairs_->AppendRecord(ra[i], ip));
                ++i;
                ++j;
              }
            }
          }
          return Status::OK();
        }));
  }
  CROWDER_RETURN_NOT_OK(range_pairs_->Finish());
  state_->result.pipeline_stats.boundary_spilled_bytes += range_pairs_->spilled_bytes();
  // Every bucketed pair has been folded into the range index; the bucket
  // stores (and their spill files) are no longer needed.
  state_->bucket_pairs.reset();
  state_->result.pipeline_stats.cluster_index_wall_ms = index_timer.ElapsedMillis();
  return Status::OK();
}

Status WorkflowDriver::PrepareClusterRangeRound() {
  const auto& hits = state_->cluster_hits;
  if (next_range_begin_ >= hits.size()) return Status::OK();
  WallTimer context_timer;
  const size_t begin = next_range_begin_;
  const size_t end = std::min(hits.size(), begin + hits_per_range_);

  // The range's pair context — the candidate pairs among its records, with
  // their global indices — is its shard of the inverted pair→HIT-range
  // index, replayed in append order. Simulating (or answering) a cluster
  // HIT only ever looks up pairs among that HIT's records, so this context
  // answers exactly the lookups the full pair index would.
  round_global_index_.clear();
  CROWDER_RETURN_NOT_OK(range_pairs_->Scan(
      begin / hits_per_range_, [&](const std::vector<IndexedPair>& block) {
        for (const auto& ip : block) {
          round_pairs_.push_back(ip.pair);
          round_global_index_.push_back(ip.index);
        }
        return Status::OK();
      }));

  round_cluster_hits_.assign(hits.begin() + begin, hits.begin() + end);
  IndexRoundPairs(round_pairs_);
  pending_.first_hit = next_hit_;
  pending_.pairs = &round_pairs_;
  pending_.cluster_hits = &round_cluster_hits_;
  next_range_begin_ = end;
  state_->result.pipeline_stats.cluster_context_wall_ms += context_timer.ElapsedMillis();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Adaptive question selection (config.question_policy == kInferenceOrdered).
// Each fixed-mode round source becomes a *base context* served as selection
// sub-rounds; see the selection paragraph of the file comment in driver.h.
// ---------------------------------------------------------------------------

uint64_t WorkflowDriver::ResolveSelectionBatch() const {
  uint64_t batch = config_.selection_batch_pairs;
  if (batch == 0) {
    // Auto: big enough to fill at least two HITs, and no finer than ~64
    // sub-rounds across the whole pair population — selection stays o(|P|)
    // rounds at any scale.
    const uint64_t total = state_->result.num_candidate_pairs;
    batch = std::max<uint64_t>(2ULL * config_.pairs_per_hit, (total + 63) / 64);
  }
  if (config_.hit_type == HitType::kPairBased) {
    const uint64_t per_hit = std::max<uint32_t>(config_.pairs_per_hit, 1);
    batch = (batch + per_hit - 1) / per_hit * per_hit;  // whole HITs
  }
  return std::max<uint64_t>(batch, 1);
}

namespace {

/// The consensus verdict over the votes surviving the ban set: nullopt
/// when no vote survives or the survivors disagree, otherwise their
/// unanimous verdict. The closure only learns *unanimous* answers: a transitive
/// inference compounds the error of every answer it rests on, so a bare
/// majority (1 noisy dissent in 3) is too weak a fact to propagate — it
/// still reaches aggregation as ordinary votes, it just cannot stand in
/// for a question the crowd was never asked.
std::optional<bool> SurvivingConsensus(const std::vector<aggregate::Vote>& votes,
                                       const std::unordered_set<uint32_t>& banned) {
  uint64_t yes = 0;
  uint64_t total = 0;
  for (const aggregate::Vote& v : votes) {
    if (banned.count(v.worker_id) != 0) continue;
    ++total;
    if (v.says_match) ++yes;
  }
  if (total == 0 || (yes != 0 && yes != total)) return std::nullopt;
  return yes == total;
}

}  // namespace

Status WorkflowDriver::LoadNextBaseContext() {
  base_unresolved_.clear();
  base_cluster_hits_.clear();
  base_hit_posted_.clear();

  if (config_.execution_mode == ExecutionMode::kMaterialized) {
    if (materialized_served_) return Status::OK();
    materialized_served_ = true;
    const auto& pairs = state_->result.candidate_pairs;
    if (state_->pair_hits.empty() && state_->cluster_hits.empty()) return Status::OK();
    vote_table_.assign(pairs.size(), {});
    base_unresolved_.reserve(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      base_unresolved_.push_back({pairs[i], static_cast<uint64_t>(i)});
    }
    if (config_.hit_type == HitType::kClusterBased) {
      base_cluster_hits_ = state_->cluster_hits;
      base_hit_posted_.assign(base_cluster_hits_.size(), false);
    }
    base_active_ = true;
    return Status::OK();
  }

  if (config_.hit_type == HitType::kPairBased) {
    const uint64_t total = state_->result.num_candidate_pairs;
    if (next_pair_base_ >= total) return Status::OK();
    const uint64_t want = std::min<uint64_t>(aligned_capacity_, total - next_pair_base_);
    std::vector<similarity::ScoredPair> drawn;
    drawn.reserve(static_cast<size_t>(want));
    CROWDER_ASSIGN_OR_RETURN(const size_t got, cursor_->Next(static_cast<size_t>(want), &drawn));
    if (got == 0) return Status::OK();
    base_unresolved_.reserve(drawn.size());
    for (size_t i = 0; i < drawn.size(); ++i) {
      base_unresolved_.push_back({drawn[i], next_pair_base_ + i});
    }
    next_pair_base_ += got;
    base_active_ = true;
    return Status::OK();
  }

  const auto& hits = state_->cluster_hits;
  if (next_range_begin_ >= hits.size()) return Status::OK();
  WallTimer context_timer;
  const size_t begin = next_range_begin_;
  const size_t end = std::min(hits.size(), begin + hits_per_range_);
  CROWDER_RETURN_NOT_OK(range_pairs_->Scan(
      begin / hits_per_range_, [&](const std::vector<IndexedPair>& block) {
        for (const auto& ip : block) base_unresolved_.push_back({ip.pair, ip.index});
        return Status::OK();
      }));
  base_cluster_hits_.assign(hits.begin() + begin, hits.begin() + end);
  base_hit_posted_.assign(base_cluster_hits_.size(), false);
  next_range_begin_ = end;
  base_active_ = true;
  state_->result.pipeline_stats.cluster_context_wall_ms += context_timer.ElapsedMillis();
  return Status::OK();
}

void WorkflowDriver::SweepClosure() {
  size_t kept = 0;
  for (const PendingQuestion& q : base_unresolved_) {
    // Already resolved through another context (overlapping cluster ranges
    // share pairs) or awaiting its re-ask — either way, not this context's
    // question anymore.
    if (asked_.count(q.global_index) != 0 || inferred_.count(q.global_index) != 0 ||
        reask_pending_.count(q.global_index) != 0) {
      continue;
    }
    if (auto verdict = closure_->Infer(q.pair.a, q.pair.b)) {
      inferred_.emplace(q.global_index, InferredPair{q.pair, *verdict});
      inferred_key_[PairKey(q.pair.a, q.pair.b)] = q.global_index;
      ++inferred_new_;
      continue;
    }
    base_unresolved_[kept++] = q;
  }
  base_unresolved_.resize(kept);
}

Status WorkflowDriver::PostReaskRound() {
  const size_t take =
      std::min<size_t>(reask_queue_.size(), static_cast<size_t>(ResolveSelectionBatch()));
  round_pairs_.reserve(take);
  round_global_index_.reserve(take);
  std::vector<graph::Edge> edges;
  edges.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const PendingQuestion& q = reask_queue_[i];
    round_pairs_.push_back(q.pair);
    round_global_index_.push_back(q.global_index);
    edges.push_back({q.pair.a, q.pair.b});
    reask_pending_.erase(q.global_index);
  }
  reask_queue_.erase(reask_queue_.begin(), reask_queue_.begin() + take);

  hitgen::PairHitPacker packer(config_.pairs_per_hit);
  CROWDER_RETURN_NOT_OK(packer.Add(edges));
  CROWDER_ASSIGN_OR_RETURN(round_pair_hits_, packer.Finish());
  IndexRoundPairs(round_pairs_);
  pending_.first_hit = next_hit_;
  pending_.pairs = &round_pairs_;
  pending_.pair_hits = &round_pair_hits_;
  return Status::OK();
}

Status WorkflowDriver::PostSelectionRound() {
  const uint64_t batch = ResolveSelectionBatch();

  if (config_.hit_type == HitType::kPairBased) {
    policy_->Rank(closure_.get(), &base_unresolved_);
    const size_t take = std::min<size_t>(base_unresolved_.size(), static_cast<size_t>(batch));
    round_pairs_.reserve(take);
    round_global_index_.reserve(take);
    std::vector<graph::Edge> edges;
    edges.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      const PendingQuestion& q = base_unresolved_[i];
      round_pairs_.push_back(q.pair);
      round_global_index_.push_back(q.global_index);
      edges.push_back({q.pair.a, q.pair.b});
    }
    base_unresolved_.erase(base_unresolved_.begin(), base_unresolved_.begin() + take);
    hitgen::PairHitPacker packer(config_.pairs_per_hit);
    CROWDER_RETURN_NOT_OK(packer.Add(edges));
    CROWDER_ASSIGN_OR_RETURN(round_pair_hits_, packer.Finish());
    IndexRoundPairs(round_pairs_);
    pending_.first_hit = next_hit_;
    pending_.pairs = &round_pairs_;
    pending_.pair_hits = &round_pair_hits_;
    return Status::OK();
  }

  // Cluster-based: selection is per *HIT* (a cluster HIT is the atomic unit
  // of crowd work — its pairs cannot be posted separately). Rank the
  // unposted HITs by the summed gain of their unresolved pairs, skip HITs
  // with none (the savings), and post the ranked top until the batch's
  // pair budget is covered. The sub-round's context is exactly the posted
  // HITs' unresolved pairs, so already-resolved pairs inside a posted HIT
  // receive no votes.
  std::unordered_map<uint64_t, size_t> unresolved_index;
  unresolved_index.reserve(base_unresolved_.size());
  std::vector<double> gain(base_unresolved_.size(), 0.0);
  for (size_t i = 0; i < base_unresolved_.size(); ++i) {
    const PendingQuestion& q = base_unresolved_[i];
    unresolved_index[PairKey(q.pair.a, q.pair.b)] = i;
    gain[i] = policy_->Gain(closure_.get(), q);
  }

  struct HitRank {
    size_t hit = 0;
    double gain = 0.0;
    std::vector<size_t> pairs;  // indices into base_unresolved_
  };
  std::vector<HitRank> ranked;
  for (size_t h = 0; h < base_cluster_hits_.size(); ++h) {
    if (base_hit_posted_[h]) continue;
    const auto& records = base_cluster_hits_[h].records;
    HitRank hr;
    hr.hit = h;
    for (size_t i = 0; i < records.size(); ++i) {
      for (size_t j = i + 1; j < records.size(); ++j) {
        const auto it = unresolved_index.find(PairKey(records[i], records[j]));
        if (it == unresolved_index.end()) continue;
        hr.gain += gain[it->second];
        hr.pairs.push_back(it->second);
      }
    }
    if (!hr.pairs.empty()) ranked.push_back(std::move(hr));
  }
  if (ranked.empty()) {
    // Defensive: every unresolved pair is covered by some unposted HIT (the
    // cluster cover), so this can only mean the context is exhausted.
    base_unresolved_.clear();
    return Status::OK();
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const HitRank& x, const HitRank& y) { return x.gain > y.gain; });

  std::unordered_set<size_t> context;  // indices into base_unresolved_
  std::vector<size_t> posted;
  for (const HitRank& hr : ranked) {
    if (!posted.empty() && context.size() >= batch) break;
    posted.push_back(hr.hit);
    base_hit_posted_[hr.hit] = true;
    for (const size_t p : hr.pairs) context.insert(p);
  }

  // Deterministic context order: ascending global index (vote filing and
  // FinishRound statistics see this order).
  std::vector<size_t> ordered(context.begin(), context.end());
  std::sort(ordered.begin(), ordered.end(), [&](size_t x, size_t y) {
    return base_unresolved_[x].global_index < base_unresolved_[y].global_index;
  });
  round_pairs_.reserve(ordered.size());
  round_global_index_.reserve(ordered.size());
  for (const size_t i : ordered) {
    round_pairs_.push_back(base_unresolved_[i].pair);
    round_global_index_.push_back(base_unresolved_[i].global_index);
  }
  std::sort(posted.begin(), posted.end());
  round_cluster_hits_.reserve(posted.size());
  for (const size_t h : posted) round_cluster_hits_.push_back(base_cluster_hits_[h]);

  size_t kept = 0;
  for (size_t i = 0; i < base_unresolved_.size(); ++i) {
    if (context.count(i) != 0) continue;
    base_unresolved_[kept++] = base_unresolved_[i];
  }
  base_unresolved_.resize(kept);

  IndexRoundPairs(round_pairs_);
  pending_.first_hit = next_hit_;
  pending_.pairs = &round_pairs_;
  pending_.cluster_hits = &round_cluster_hits_;
  return Status::OK();
}

Status WorkflowDriver::PrepareAdaptiveRound() {
  for (;;) {
    // Retractions first: a re-asked pair may unlock inferences for every
    // later context.
    if (!reask_queue_.empty()) return PostReaskRound();
    if (!base_active_) {
      CROWDER_RETURN_NOT_OK(LoadNextBaseContext());
      if (!base_active_) return Status::OK();  // sources exhausted → Finalize
    }
    SweepClosure();
    if (base_unresolved_.empty()) {
      base_active_ = false;  // context fully resolved — retire it
      if (config_.execution_mode == ExecutionMode::kStreaming &&
          config_.hit_type == HitType::kClusterBased) {
        ++state_->result.pipeline_stats.crowd_partitions;
      }
      continue;
    }
    CROWDER_RETURN_NOT_OK(PostSelectionRound());
    if (!pending_.empty()) return Status::OK();
  }
}

void WorkflowDriver::FoldAnsweredRound() {
  if (pending_.pairs == nullptr) return;
  const auto& pairs = *pending_.pairs;
  std::vector<std::vector<aggregate::Vote>> per_pair(pairs.size());
  for (const auto& [local, vote] : round_votes_) per_pair[local].push_back(vote);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const uint64_t global = round_global_index_[i];
    AskedPair& rec = asked_[global];
    rec.pair = pairs[i];
    rec.votes.insert(rec.votes.end(), per_pair[i].begin(), per_pair[i].end());
    if (auto verdict = SurvivingConsensus(rec.votes, banned_workers_)) {
      closure_->AddAnswer(rec.pair.a, rec.pair.b, *verdict);
    }
  }
}

void WorkflowDriver::MaybeRebuildClosure() {
  if (banned_workers_.size() == banned_seen_) return;
  banned_seen_ = banned_workers_.size();

  // The closure cannot un-union, so revision means replay: rebuild from the
  // asked log's surviving consensus (ascending global index — the
  // deterministic rebuild order), then re-validate every inferred verdict
  // against the rebuilt closure.
  closure_->Reset();
  for (const auto& [global, rec] : asked_) {
    if (auto verdict = SurvivingConsensus(rec.votes, banned_workers_)) {
      closure_->AddAnswer(rec.pair.a, rec.pair.b, *verdict);
    }
  }
  for (auto it = inferred_.begin(); it != inferred_.end();) {
    const auto verdict = closure_->Infer(it->second.pair.a, it->second.pair.b);
    if (verdict.has_value() && *verdict == it->second.verdict) {
      ++it;
      continue;
    }
    // Un-inferred: the evidence that implied this verdict no longer
    // survives (or now implies the opposite). Conservative re-ask.
    reask_queue_.push_back({it->second.pair, it->first});
    reask_pending_.insert(it->first);
    inferred_key_.erase(PairKey(it->second.pair.a, it->second.pair.b));
    it = inferred_.erase(it);
  }
}

Status WorkflowDriver::Advance() {
  next_hit_ += static_cast<uint32_t>(pending_.num_hits());  // retire the answered round
  pending_ = crowd::HitBatch{};
  round_pairs_.clear();
  round_pair_hits_.clear();
  round_cluster_hits_.clear();
  round_pair_index_.clear();
  round_global_index_.clear();
  round_hits_filed_.clear();
  round_votes_.clear();
  round_votes_reviewed_ = 0;
  repair_rounds_used_ = 0;
  votes_submitted_ = false;

  if (state_->result.num_candidate_pairs > 0) {
    if (adaptive()) {
      CROWDER_RETURN_NOT_OK(PrepareAdaptiveRound());
    } else if (config_.execution_mode == ExecutionMode::kMaterialized) {
      CROWDER_RETURN_NOT_OK(PrepareMaterializedRound());
    } else if (config_.hit_type == HitType::kPairBased) {
      CROWDER_RETURN_NOT_OK(PreparePairPartitionRound());
    } else {
      CROWDER_RETURN_NOT_OK(PrepareClusterRangeRound());
    }
  }
  if (!pending_.empty()) {
    phase_ = Phase::kAwaitingVotes;
    round_timer_.Reset();
    return Status::OK();
  }
  return Finalize();
}

Status WorkflowDriver::Finalize() {
  WorkflowResult& result = state_->result;
  // Hand the accumulated bans to aggregation (the revision point: every
  // decision is derived from the surviving votes only) and report them.
  if (!banned_workers_.empty()) {
    result.filtered_workers.assign(banned_workers_.begin(), banned_workers_.end());
    std::sort(result.filtered_workers.begin(), result.filtered_workers.end());
    state_->banned_workers = banned_workers_;
  }
  if (config_.execution_mode == ExecutionMode::kStreaming && state_->votes != nullptr) {
    CROWDER_RETURN_NOT_OK(state_->votes->Finish());
    result.pipeline_stats.vote_spilled_bytes = state_->votes->spilled_bytes();
  }
  if (config_.execution_mode == ExecutionMode::kMaterialized) {
    result.crowd_stats.votes = std::move(vote_table_);
  }
  if (adaptive()) {
    for (const auto& [global, ip] : inferred_) {
      state_->inferred_verdicts.emplace(global, ip.verdict);
    }
    result.crowd_pairs_asked = asked_.size();
    result.pairs_inferred = inferred_.size();
  } else {
    // Fixed order asks everything (when there was crowd work at all).
    result.crowd_pairs_asked = next_hit_ > 0 ? result.num_candidate_pairs : 0;
  }
  // Fallback crowd statistics from what flowed through SubmitVotes; a
  // backend's Finish result (SubmitCrowdStats) replaces them with the
  // authoritative numbers, preserving the vote table.
  crowd::CrowdRunResult& stats = result.crowd_stats;
  stats.num_hits = next_hit_;
  stats.num_assignments = static_cast<uint32_t>(stats.assignment_seconds.size());
  stats.median_assignment_seconds = crowd::AssignmentMedianSeconds(stats.assignment_seconds);

  result.pipeline_stats.stages.push_back({"crowd", crowd_timer_.ElapsedMillis()});
  Pipeline aggregate;
  aggregate.Add(std::make_unique<AggregateStage>());
  CROWDER_RETURN_NOT_OK(aggregate.Run(state_.get(), &result.pipeline_stats));
  phase_ = Phase::kDone;
  return Status::OK();
}

Status WorkflowDriver::SubmitVotes(crowd::VoteBatch votes) {
  if (failed_) return Status::InvalidArgument("WorkflowDriver already failed");
  if (done()) {
    return Status::InvalidArgument("SubmitVotes after the workflow finished (done() is true)");
  }
  if (phase_ != Phase::kAwaitingVotes) {
    return Status::InvalidArgument("SubmitVotes before Start");
  }
  if (votes_submitted_) {
    return Status::InvalidArgument(
        "duplicate vote submission: the pending HIT batch was already answered");
  }

  // Validate the whole batch before filing any of it, so a rejection leaves
  // no partial state behind; the rejection still poisons the driver (the
  // failed_ latch) because a transport that produced one corrupt vote
  // cannot be trusted for the rest of the run. Each vote's context position
  // is cached here so filing needn't hash the keys a second time.
  const uint32_t first = pending_.first_hit;
  const uint32_t end_hit = first + static_cast<uint32_t>(pending_.num_hits());
  std::vector<size_t> vote_locals;
  size_t total_votes = 0;
  for (const crowd::HitVotes& hv : votes.hit_votes) total_votes += hv.votes.size();
  vote_locals.reserve(total_votes);
  std::unordered_set<uint32_t> batch_hits;
  batch_hits.reserve(votes.hit_votes.size());
  for (const crowd::HitVotes& hv : votes.hit_votes) {
    if (hv.hit < first || hv.hit >= end_hit) {
      failed_ = true;
      return Status::InvalidArgument(
          "vote batch names HIT " + std::to_string(hv.hit) + " outside the pending batch [" +
          std::to_string(first) + ", " + std::to_string(end_hit) + ")");
    }
    // A HIT's votes are atomic across an asynchronous round's deliveries
    // (crowd/backend.h): seeing the same HIT twice — in this batch or an
    // earlier partial one — means the transport re-delivered, and filing it
    // again would double-count its votes.
    if (round_hits_filed_.count(hv.hit) != 0 || !batch_hits.insert(hv.hit).second) {
      failed_ = true;
      return Status::InvalidArgument("HIT " + std::to_string(hv.hit) +
                                     " delivered twice in this round");
    }
    for (const crowd::PairVote& pv : hv.votes) {
      const auto it = round_pair_index_.find(PairKey(pv.a, pv.b));
      if (it == round_pair_index_.end()) {
        // A vote on a pair the answer closure already resolved is a clean
        // protocol error, not corrupt data: the pair was deliberately never
        // posted, so a well-meaning caller answering from its own records
        // can hit this — reject the batch (nothing was filed yet) without
        // latching, so the corrected batch can be resubmitted.
        if (inferred_key_.count(PairKey(pv.a, pv.b)) != 0) {
          return Status::InvalidArgument(
              "vote on pair " + PairName(pv.a, pv.b) +
              " already resolved by the answer closure: the pair was inferred, not posted "
              "(HIT " + std::to_string(hv.hit) + ")");
        }
        failed_ = true;
        return Status::InvalidArgument("vote on unknown pair " + PairName(pv.a, pv.b) +
                                       ": not in the pending batch's candidate context (HIT " +
                                       std::to_string(hv.hit) + ")");
      }
      vote_locals.push_back(it->second);
    }
  }
  for (const crowd::AssignmentRecord& rec : votes.assignments) {
    if (rec.hit < first || rec.hit >= end_hit) {
      failed_ = true;
      return Status::InvalidArgument(
          "assignment record names HIT " + std::to_string(rec.hit) +
          " outside the pending batch [" + std::to_string(first) + ", " +
          std::to_string(end_hit) + ")");
    }
  }

  // File the votes in the given order (per-pair cast order is what the
  // aggregators — and the byte-identity contract — observe). A filing
  // failure (e.g. vote-shard spill I/O) leaves a prefix already appended,
  // so it must latch too — a retry would double-file that prefix.
  const bool streaming = config_.execution_mode == ExecutionMode::kStreaming;
  size_t vote_cursor = 0;
  for (const crowd::HitVotes& hv : votes.hit_votes) {
    round_hits_filed_.insert(hv.hit);
    for (const crowd::PairVote& pv : hv.votes) {
      const size_t local = vote_locals[vote_cursor++];
      const uint64_t global = round_global_index_[local];
      if (streaming) {
        const Status filed = state_->votes->Append(global, pv.vote);
        if (!filed.ok()) {
          failed_ = true;
          return filed;
        }
      } else {
        vote_table_[static_cast<size_t>(global)].push_back(pv.vote);
      }
      round_votes_.emplace_back(local, pv.vote);
    }
  }
  crowd::CrowdRunResult& stats = state_->result.crowd_stats;
  for (const crowd::AssignmentRecord& rec : votes.assignments) {
    if (rec.by_spammer) ++stats.num_spammer_assignments;
    stats.total_comparisons += rec.comparisons;
    stats.assignment_seconds.push_back(rec.duration_seconds);
    stats.assignments.push_back(rec);
    crowd::WorkerStats& ws = worker_stats_[rec.worker];
    ws.worker = rec.worker;
    ++ws.num_assignments;
    ws.work_seconds += rec.duration_seconds;
  }
  // A partial delivery (complete = false) leaves the round open: more
  // submissions may follow before the completing one closes it.
  votes_submitted_ = votes.complete;
  return Status::OK();
}

void WorkflowDriver::FinishRound() {
  // Only the segment this round delivered: earlier entries belong to the
  // context's previous (repaired) rounds and are already folded in.
  const size_t context = pending_.pairs != nullptr ? pending_.pairs->size() : 0;
  const size_t begin = round_votes_reviewed_;
  std::vector<uint32_t> yes(context, 0);
  std::vector<uint32_t> total(context, 0);
  for (size_t i = begin; i < round_votes_.size(); ++i) {
    const auto& [local, vote] = round_votes_[i];
    ++total[local];
    if (vote.says_match) ++yes[local];
  }

  CrowdRoundStats round;
  round.first_hit = pending_.first_hit;
  round.num_hits = static_cast<uint32_t>(pending_.num_hits());
  round.num_votes = round_votes_.size() - begin;
  round.fleiss_kappa = aggregate::FleissKappa(yes, total);
  // The selection savings banked while this round was prepared (adaptive
  // only; the counter stays 0 under kFixedOrder).
  round.pairs_inferred = inferred_new_;
  inferred_new_ = 0;

  // Fold the round into the lifetime approval statistics: a vote is
  // approved when it sides with its pair's round majority (ties approve —
  // a split pair is evidence about the pair, not the worker).
  for (size_t i = begin; i < round_votes_.size(); ++i) {
    const auto& [local, vote] = round_votes_[i];
    crowd::WorkerStats& ws = worker_stats_[vote.worker_id];
    ws.worker = vote.worker_id;
    ++ws.num_votes;
    const uint64_t twice_yes = 2ULL * yes[local];
    const bool with_majority =
        vote.says_match ? twice_yes >= total[local] : twice_yes <= total[local];
    if (with_majority) ++ws.num_agreements;
  }
  round_votes_reviewed_ = round_votes_.size();

  if (filter_ != nullptr) {
    std::vector<crowd::WorkerStats> stats;
    stats.reserve(worker_stats_.size());
    for (const auto& [id, ws] : worker_stats_) stats.push_back(ws);
    for (const uint32_t banned : filter_->Review(stats)) {
      if (banned_workers_.insert(banned).second) ++round.workers_banned;
    }
  }
  state_->result.crowd_rounds.push_back(round);
}

Result<bool> WorkflowDriver::PrepareRepairRound() {
  if (filter_ == nullptr || banned_workers_.empty()) return false;
  if (repair_rounds_used_ >= config_.repair_rounds) return false;
  if (pending_.pairs == nullptr) return false;

  // A pair is under-replicated when fewer than assignments_per_hit of its
  // votes survive the cumulative bans — the replication the config promised
  // it. All the context's votes count, including earlier repair rounds'.
  const uint32_t target = config_.crowd.assignments_per_hit;
  std::vector<uint32_t> surviving(pending_.pairs->size(), 0);
  for (const auto& [local, vote] : round_votes_) {
    if (banned_workers_.count(vote.worker_id) == 0) ++surviving[local];
  }
  std::vector<graph::Edge> deficient;
  for (size_t i = 0; i < surviving.size(); ++i) {
    if (surviving[i] < target) {
      deficient.push_back({(*pending_.pairs)[i].a, (*pending_.pairs)[i].b});
    }
  }
  if (deficient.empty()) return false;

  // Re-post the deficient pairs as fresh pair-based HITs over the same
  // context (legal even for a cluster round: backends dispatch on the
  // batch's shape). The HIT sequence stays continuous — retire the answered
  // round's HITs before swapping the repair HITs in.
  hitgen::PairHitPacker packer(config_.pairs_per_hit);
  CROWDER_RETURN_NOT_OK(packer.Add(deficient));
  next_hit_ += static_cast<uint32_t>(pending_.num_hits());
  CROWDER_ASSIGN_OR_RETURN(round_pair_hits_, packer.Finish());
  pending_.first_hit = next_hit_;
  pending_.pair_hits = &round_pair_hits_;
  pending_.cluster_hits = nullptr;
  round_hits_filed_.clear();
  votes_submitted_ = false;
  ++repair_rounds_used_;
  return true;
}

Status WorkflowDriver::Step() {
  if (failed_) return Status::InvalidArgument("WorkflowDriver already failed");
  if (phase_ == Phase::kIdle) return Status::InvalidArgument("Step before Start");
  if (done()) return Status::InvalidArgument("Step after the workflow finished");
  if (!votes_submitted_) {
    return Status::InvalidArgument(
        "the pending HIT batch has not been answered (SubmitVotes first)");
  }
  state_->result.pipeline_stats.round_wall_micros.Record(
      static_cast<uint64_t>(round_timer_.ElapsedSeconds() * 1e6));
  FinishRound();
  CROWDER_ASSIGN_OR_RETURN(const bool repairing, PrepareRepairRound());
  if (repairing) {
    round_timer_.Reset();
    return Status::OK();  // same context, new HITs, await votes
  }
  if (adaptive()) {
    // The sub-round (repairs included) is fully answered: teach the closure
    // its unanimous verdicts, and if this round's review grew the ban set,
    // rebuild
    // and retract (driver.h's retraction contract).
    FoldAnsweredRound();
    MaybeRebuildClosure();
  } else if (config_.execution_mode == ExecutionMode::kStreaming &&
             config_.hit_type == HitType::kClusterBased) {
    // Adaptive mode counts a crowd partition when a base context retires
    // (PrepareAdaptiveRound), not once per sub-round.
    ++state_->result.pipeline_stats.crowd_partitions;
  }
  return Advance();
}

Status WorkflowDriver::SubmitCrowdStats(crowd::CrowdRunResult stats) {
  if (failed_) return Status::InvalidArgument("WorkflowDriver already failed");
  if (phase_ == Phase::kTaken) {
    return Status::InvalidArgument("SubmitCrowdStats after TakeResult");
  }
  if (phase_ != Phase::kDone) {
    return Status::InvalidArgument("SubmitCrowdStats before the workflow finished");
  }
  stats.votes = std::move(state_->result.crowd_stats.votes);
  state_->result.crowd_stats = std::move(stats);
  return Status::OK();
}

Result<WorkflowResult> WorkflowDriver::TakeResult() {
  if (failed_) return Status::InvalidArgument("WorkflowDriver already failed");
  if (phase_ == Phase::kTaken) return Status::InvalidArgument("result already taken");
  if (phase_ != Phase::kDone) {
    return Status::InvalidArgument(
        std::string("TakeResult before the workflow finished") +
        (phase_ == Phase::kAwaitingVotes
             ? (votes_submitted_ ? " (answered round not yet stepped)"
                                 : " (pending HIT batch unanswered)")
             : ""));
  }
  phase_ = Phase::kTaken;
  return std::move(state_->result);
}

}  // namespace core
}  // namespace crowder
