#include "core/question_policy.h"

#include <algorithm>

namespace crowder {
namespace core {

namespace {

/// The identity policy: every question is equally urgent, nothing moves.
class FixedOrderPolicy : public QuestionPolicy {
 public:
  QuestionPolicyKind kind() const override { return QuestionPolicyKind::kFixedOrder; }
  double Gain(graph::AnswerClosure*, const PendingQuestion&) const override { return 0.0; }
  void Rank(graph::AnswerClosure*, std::vector<PendingQuestion>*) const override {}
};

/// Information-gain ordering (Yalavarthi et al.'s degree / component-size
/// heuristic): a pair's answer is worth the likelihood it is a match times
/// the number of record pairs a match would connect — the product of the
/// two records' current cluster sizes. A likely match between two grown
/// clusters collapses |A| * |B| open questions at once; a long-shot pair
/// between singletons settles only itself.
class InferenceOrderedPolicy : public QuestionPolicy {
 public:
  QuestionPolicyKind kind() const override { return QuestionPolicyKind::kInferenceOrdered; }

  double Gain(graph::AnswerClosure* closure, const PendingQuestion& q) const override {
    const double sa = closure != nullptr ? closure->ClusterSize(q.pair.a) : 1.0;
    const double sb = closure != nullptr ? closure->ClusterSize(q.pair.b) : 1.0;
    return q.pair.score * sa * sb;
  }

  void Rank(graph::AnswerClosure* closure,
            std::vector<PendingQuestion>* pending) const override {
    // Score once, then stable-sort: Gain reads mutable closure state, so
    // calling it inside the comparator would be both slow and fragile.
    std::vector<std::pair<double, PendingQuestion>> scored;
    scored.reserve(pending->size());
    for (const PendingQuestion& q : *pending) scored.emplace_back(Gain(closure, q), q);
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& x, const auto& y) { return x.first > y.first; });
    pending->clear();
    for (auto& [gain, q] : scored) pending->push_back(q);
  }
};

}  // namespace

std::unique_ptr<QuestionPolicy> MakeQuestionPolicy(QuestionPolicyKind kind) {
  if (kind == QuestionPolicyKind::kInferenceOrdered) {
    return std::make_unique<InferenceOrderedPolicy>();
  }
  return std::make_unique<FixedOrderPolicy>();
}

const char* QuestionPolicyName(QuestionPolicyKind kind) {
  return kind == QuestionPolicyKind::kInferenceOrdered ? "adaptive" : "fixed";
}

}  // namespace core
}  // namespace crowder
