/// \file
/// \brief Block-structured spill files: the disk half of every
/// bounded-memory structure in the pipeline.
///
/// A SpillLog<T> is an append-only sequence of *blocks* of
/// trivially-copyable records, backed by one unlinked-on-destruction temp
/// file. It is the machinery PR 3 introduced for the candidate PairStream,
/// generalized so the partitioned crowd boundary can reuse it for other
/// record types (indexed pairs, vote records) without duplicating the I/O
/// and lifetime handling:
///
///   * blocks append sequentially through one buffered write handle;
///   * any number of cursors may read concurrently via positioned reads
///     (pread) on one shared descriptor — two fds total per log, no matter
///     how many blocks or cursors exist;
///   * the file is created with mkstemp and removed on destruction,
///     including when an exception unwinds through the owner.
#ifndef CROWDER_CORE_SPILL_H_
#define CROWDER_CORE_SPILL_H_

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/result.h"

namespace crowder {
/// \brief The workflow layer: pipeline substrate, partitioned crowd
/// boundary, hybrid workflow, budget planning, and entity resolution.
namespace core {

/// \brief Implementation details of SpillLog; not part of the public API.
namespace spill_internal {

/// \brief Formats the current errno under a short operation label.
inline std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace spill_internal

/// \brief Append-only block file of trivially-copyable records, created
/// lazily under the system temp directory and removed (and closed) on
/// destruction — including when an exception unwinds through the owner.
///
/// One SpillLog costs at most two file descriptors: the buffered write
/// handle and a shared read descriptor opened on the first cursor. Blocks
/// are the unit of append and of read-back; record order within and across
/// blocks is exactly append order.
template <typename T>
class SpillLog {
  static_assert(std::is_trivially_copyable<T>::value,
                "SpillLog writes records as raw bytes");

 public:
  /// \brief Creates an empty spill log under $TMPDIR (default /tmp).
  static Result<SpillLog> Create() {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") + "/crowder-spill-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0) return Status::IOError(spill_internal::ErrnoMessage("mkstemp"));
    std::FILE* file = ::fdopen(fd, "wb");
    if (file == nullptr) {
      const Status status = Status::IOError(spill_internal::ErrnoMessage("fdopen"));
      ::close(fd);
      ::unlink(buf.data());
      return status;
    }
    SpillLog out;
    out.path_.assign(buf.data());
    out.file_ = file;
    return out;
  }

  /// \brief Move-constructs, leaving `other` closed and empty.
  SpillLog(SpillLog&& other) noexcept
      : path_(std::move(other.path_)),
        file_(other.file_),
        read_fd_(other.read_fd_),
        blocks_(std::move(other.blocks_)),
        bytes_written_(other.bytes_written_) {
    other.file_ = nullptr;
    other.read_fd_ = -1;
    other.path_.clear();
  }

  /// \brief Move-assigns, closing (and unlinking) any current file first.
  SpillLog& operator=(SpillLog&& other) noexcept {
    if (this != &other) {
      Close();
      path_ = std::move(other.path_);
      file_ = other.file_;
      read_fd_ = other.read_fd_;
      blocks_ = std::move(other.blocks_);
      bytes_written_ = other.bytes_written_;
      other.file_ = nullptr;
      other.read_fd_ = -1;
      other.path_.clear();
    }
    return *this;
  }

  SpillLog(const SpillLog&) = delete;             ///< not copyable
  SpillLog& operator=(const SpillLog&) = delete;  ///< not copyable
  /// \brief Closes both descriptors and unlinks the temp file.
  ~SpillLog() { Close(); }

  /// \brief Appends one block (raw record array + in-memory offset record).
  Status AppendBlock(const std::vector<T>& block) {
    CROWDER_CHECK(file_ != nullptr) << "AppendBlock on closed SpillLog";
    BlockExtent extent;
    extent.offset_bytes = bytes_written_;
    extent.num_records = block.size();
    if (!block.empty() &&
        std::fwrite(block.data(), sizeof(T), block.size(), file_) != block.size()) {
      return Status::IOError(spill_internal::ErrnoMessage("spill write"));
    }
    bytes_written_ += block.size() * sizeof(T);
    blocks_.push_back(extent);
    return Status::OK();
  }

  /// \brief Blocks appended so far.
  size_t num_blocks() const { return blocks_.size(); }
  /// \brief Total payload bytes appended so far.
  uint64_t bytes_written() const { return bytes_written_; }
  /// \brief On-disk location; exposed so tests can assert cleanup.
  const std::string& path() const { return path_; }

  /// \brief Sequential cursor over one block. Any number of cursors may be
  /// live simultaneously over different (or the same) blocks — a k-way merge
  /// holds one per block. Cursors share the log's single read descriptor via
  /// positioned reads (pread). A cursor must not outlive its SpillLog.
  class BlockCursor {
   public:
    BlockCursor(BlockCursor&&) noexcept = default;             ///< movable
    BlockCursor& operator=(BlockCursor&&) noexcept = default;  ///< movable
    BlockCursor(const BlockCursor&) = delete;                  ///< not copyable
    BlockCursor& operator=(const BlockCursor&) = delete;       ///< not copyable

    /// \brief Reads up to `max_records` records into `out`; returns how many
    /// were read (0 at end of block) or a Status on I/O failure.
    Result<size_t> Read(T* out, size_t max_records) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(max_records, remaining_));
      if (want == 0) return static_cast<size_t>(0);
      // Positioned read: no shared seek state, so interleaved cursors never
      // disturb each other on the one descriptor.
      size_t done = 0;
      char* dst = reinterpret_cast<char*>(out);
      while (done < want * sizeof(T)) {
        const ssize_t got = ::pread(fd_, dst + done, want * sizeof(T) - done,
                                    static_cast<off_t>(offset_bytes_ + done));
        if (got < 0) return Status::IOError(spill_internal::ErrnoMessage("spill read"));
        if (got == 0) return Status::IOError("spill read: short read");
        done += static_cast<size_t>(got);
      }
      offset_bytes_ += done;
      remaining_ -= want;
      return want;
    }

   private:
    friend class SpillLog;
    BlockCursor(int fd, uint64_t offset_bytes, uint64_t remaining)
        : fd_(fd), offset_bytes_(offset_bytes), remaining_(remaining) {}
    int fd_ = -1;                ///< owned by the SpillLog
    uint64_t offset_bytes_ = 0;  ///< next read position
    uint64_t remaining_ = 0;     ///< records left in this block
  };

  /// \brief Opens a cursor over block `index`.
  Result<BlockCursor> OpenBlock(size_t index) const {
    CROWDER_CHECK_LT(index, blocks_.size());
    // The write handle is buffered; make the bytes visible to the read side.
    if (file_ != nullptr && std::fflush(file_) != 0) {
      return Status::IOError(spill_internal::ErrnoMessage("spill flush"));
    }
    if (read_fd_ < 0) {
      read_fd_ = ::open(path_.c_str(), O_RDONLY);
      if (read_fd_ < 0) return Status::IOError(spill_internal::ErrnoMessage("spill open"));
    }
    return BlockCursor(read_fd_, blocks_[index].offset_bytes, blocks_[index].num_records);
  }

  /// \brief Reads the whole of block `index` into a vector (convenience for
  /// consumers that replay blocks in append order).
  Result<std::vector<T>> ReadBlock(size_t index) const {
    CROWDER_ASSIGN_OR_RETURN(BlockCursor cursor, OpenBlock(index));
    std::vector<T> out(blocks_[index].num_records);
    if (!out.empty()) {
      CROWDER_ASSIGN_OR_RETURN(const size_t got, cursor.Read(out.data(), out.size()));
      if (got != out.size()) return Status::IOError("spill read: truncated block");
    }
    return out;
  }

 private:
  SpillLog() = default;

  struct BlockExtent {
    uint64_t offset_bytes = 0;
    uint64_t num_records = 0;
  };

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    if (read_fd_ >= 0) {
      ::close(read_fd_);
      read_fd_ = -1;
    }
    if (!path_.empty()) {
      ::unlink(path_.c_str());
      path_.clear();
    }
  }

  std::string path_;
  std::FILE* file_ = nullptr;  ///< write handle
  mutable int read_fd_ = -1;   ///< shared by all cursors; opened on first read
  std::vector<BlockExtent> blocks_;
  uint64_t bytes_written_ = 0;
};

}  // namespace core
}  // namespace crowder

#endif  // CROWDER_CORE_SPILL_H_
