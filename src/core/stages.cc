#include "core/stages.h"

#include <algorithm>
#include <string>

#include "aggregate/majority_vote.h"
#include "aggregate/partitioned.h"
#include "common/logging.h"
#include "crowd/session.h"
#include "exec/thread_pool.h"
#include "graph/connected_components.h"
#include "graph/pair_graph.h"
#include "hitgen/packing.h"
#include "hitgen/pair_hit_generator.h"
#include "hitgen/two_tiered_generator.h"
#include "similarity/parallel_join.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace crowder {
namespace core {

namespace internal {

similarity::JoinInput BuildJoinInput(const data::Dataset& dataset, CandidateStrategy strategy,
                                     std::vector<std::string>* keys) {
  text::Tokenizer tokenizer;
  text::Vocabulary vocab;
  similarity::JoinInput input;
  input.sets.reserve(dataset.table.num_records());
  if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
    keys->reserve(dataset.table.num_records());
  }
  for (uint32_t r = 0; r < dataset.table.num_records(); ++r) {
    const std::string concatenated = dataset.table.ConcatenatedRecord(r);
    input.sets.push_back(
        similarity::MakeTokenSet(vocab.InternDocument(tokenizer.Tokenize(concatenated))));
    if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
      keys->push_back(tokenizer.normalizer().Normalize(concatenated));
    }
  }
  input.sources = dataset.table.sources;
  return input;
}

uint64_t CountCandidateMatches(const data::Dataset& dataset,
                               const std::vector<similarity::ScoredPair>& pairs) {
  uint64_t count = 0;
  for (const auto& p : pairs) {
    if (dataset.truth.IsMatch(p.a, p.b)) ++count;
  }
  return count;
}

}  // namespace internal

namespace {

bool IsStreaming(const WorkflowState& state) {
  return state.config->execution_mode == ExecutionMode::kStreaming;
}

// The one place the ranked score is assembled, shared by both execution
// modes (the byte-identity contract depends on the formula never
// diverging): the crowd posterior ranks first; the machine likelihood
// breaks ties among equal posteriors (e.g. all-yes unanimous pairs).
eval::RankedPair MakeRankedPair(const similarity::ScoredPair& pair, double probability,
                                const data::Dataset& dataset) {
  eval::RankedPair rp;
  rp.a = pair.a;
  rp.b = pair.b;
  rp.score = probability + 1e-7 * pair.score;
  rp.is_match = dataset.truth.IsMatch(pair.a, pair.b);
  return rp;
}

}  // namespace

// ---------------------------------------------------------------------------
// MachinePassStage
// ---------------------------------------------------------------------------

Status MachinePassStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  uint64_t candidate_matches = 0;
  if (IsStreaming(*state)) {
    // Stream bounded blocks through state->stream, where the pairs stay for
    // the rest of the run: the crowd boundary consumes them partition by
    // partition and the final ranked pass re-scans them, so the full sorted
    // list is never materialized. The sorted scan reproduces MachinePass'
    // (a, b)-sorted output exactly, so everything downstream sees the same
    // bytes as the materialized mode.
    CROWDER_ASSIGN_OR_RETURN(
        const auto stream_stats,
        HybridWorkflow::MachinePassStream(*state->dataset, config.measure,
                                          config.likelihood_threshold, config.num_threads,
                                          &state->stream, config.stream_block_records));
    result.pipeline_stats.streamed_pairs = stream_stats.num_pairs;
    result.pipeline_stats.spilled_bytes = stream_stats.spilled_bytes;
    result.num_candidate_pairs = stream_stats.num_pairs;
    candidate_matches = stream_stats.candidate_matches;  // counted in the sink
  } else {
    CROWDER_ASSIGN_OR_RETURN(
        result.candidate_pairs,
        HybridWorkflow::MachinePass(*state->dataset, config.measure,
                                    config.likelihood_threshold, config.candidate_strategy,
                                    config.num_threads));
    result.num_candidate_pairs = result.candidate_pairs.size();
    candidate_matches = internal::CountCandidateMatches(*state->dataset, result.candidate_pairs);
  }
  result.machine_recall =
      static_cast<double>(candidate_matches) / static_cast<double>(result.total_matches);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HitGenStage
// ---------------------------------------------------------------------------

namespace {

// Streaming cluster-based boundary: component buckets, per-bucket two-tiered
// decomposition, one global pack. Produces the HIT list the materialized
// TwoTieredGenerator produces — same HITs, same order — because
//  (1) buckets hold whole components, in the ConnectedComponents order
//      (ascending smallest member), so concatenating the per-bucket
//      decompositions reproduces the global component order;
//  (2) PartitionLcc only ever touches one component's vertices and edges,
//      and a bucket subgraph presents each component with the same
//      adjacency order (pairs arrive in globally sorted order), so the
//      per-LCC parts are identical; and
//  (3) the bottom-tier pack runs once, globally, over the identical scc
//      sequence (all small components in component order, then all LCC
//      parts in LCC order — exactly TwoTieredGenerator::Generate's order).
Status BuildClusterBoundary(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  const uint32_t num_records = static_cast<uint32_t>(state->dataset->table.num_records());

  CROWDER_ASSIGN_OR_RETURN(
      ComponentBucketPlan plan,
      PlanComponentBuckets(state->stream, num_records, state->partition_capacity));

  // Route every pair into its component's bucket, tagged with its global
  // sorted index (the vote table's pair-indexing contract).
  auto store = std::make_unique<ShardedSpillStore<IndexedPair>>(config.memory_budget_bytes);
  store->AddShards(plan.num_buckets());
  uint64_t next_index = 0;
  CROWDER_RETURN_NOT_OK(state->stream.ScanSorted([&](const PairBlock& block) {
    for (const auto& p : block) {
      IndexedPair ip;
      ip.index = next_index++;
      ip.pair = p;
      CROWDER_RETURN_NOT_OK(store->AppendRecord(plan.bucket_of_record[p.a], ip));
    }
    return Status::OK();
  }));
  CROWDER_RETURN_NOT_OK(store->Finish());

  // Decompose bucket by bucket; only one bucket's subgraph is ever resident.
  std::vector<std::vector<std::vector<uint32_t>>> small_per_bucket(plan.num_buckets());
  std::vector<std::vector<std::vector<uint32_t>>> parts_per_bucket(plan.num_buckets());
  std::vector<graph::Edge> edges;
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    graph::PairGraphBuilder builder(num_records);
    CROWDER_RETURN_NOT_OK(store->Scan(b, [&](const std::vector<IndexedPair>& block) {
      edges.clear();
      edges.reserve(block.size());
      for (const auto& ip : block) edges.push_back({ip.pair.a, ip.pair.b});
      return builder.Add(edges);
    }));
    CROWDER_ASSIGN_OR_RETURN(auto graph, builder.Build());
    graph::SplitComponents split =
        graph::SplitBySize(graph::ConnectedComponents(graph), config.cluster_size);
    small_per_bucket[b] = std::move(split.small);
    for (const auto& lcc : split.large) {
      auto lcc_parts =
          hitgen::PartitionLcc(&graph, lcc, config.cluster_size, hitgen::PartitionOptions{});
      for (auto& part : lcc_parts) parts_per_bucket[b].push_back(std::move(part));
    }
    // Coverage invariant: PartitionLcc consumed every LCC edge; small
    // components are packed whole below, so their edges are covered too.
    for (const auto& comp : small_per_bucket[b]) graph.RemoveEdgesCoveredBy(comp);
    if (graph.HasAliveEdges()) {
      return Status::Internal("bucket decomposition left uncovered edges");
    }
  }

  // Bottom tier, once and globally, over the materialized generator's
  // exact scc order.
  std::vector<std::vector<uint32_t>> sccs;
  for (auto& bucket_smalls : small_per_bucket) {
    for (auto& comp : bucket_smalls) sccs.push_back(std::move(comp));
  }
  for (auto& bucket_parts : parts_per_bucket) {
    for (auto& part : bucket_parts) sccs.push_back(std::move(part));
  }
  CROWDER_ASSIGN_OR_RETURN(state->cluster_hits,
                           hitgen::PackSccs(sccs, config.cluster_size, hitgen::PackingOptions{}));

  state->result.pipeline_stats.boundary_spilled_bytes = store->spilled_bytes();
  state->buckets = std::make_unique<ComponentBucketPlan>(std::move(plan));
  state->bucket_pairs = std::move(store);
  return Status::OK();
}

// Feeds the materialized candidate pairs to `consume` as one edge batch
// (the incremental builders are batch-boundary-blind; unit tests pin that).
Status ForEachEdgeBatch(WorkflowState* state,
                        const std::function<Status(const std::vector<graph::Edge>&)>& consume) {
  const auto& pairs = state->result.candidate_pairs;
  std::vector<graph::Edge> edges;
  edges.reserve(pairs.size());
  for (const auto& p : pairs) edges.push_back({p.a, p.b});
  return consume(edges);
}

}  // namespace

Status HitGenStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  if (state->result.num_candidate_pairs == 0) {
    CROWDER_LOG(Warning) << "machine pass pruned every pair; crowd is idle";
    return Status::OK();
  }

  if (IsStreaming(*state)) {
    state->partition_capacity =
        ResolvePartitionCapacity(config.crowd_partition_pairs, config.memory_budget_bytes);
    if (config.hit_type == HitType::kPairBased) {
      // Pair-based HITs close every pairs_per_hit pairs of the sorted
      // sequence, so they are packed partition-by-partition inside
      // CrowdStage's single walk — nothing to precompute here.
      return Status::OK();
    }
    return BuildClusterBoundary(state);
  }

  if (config.hit_type == HitType::kPairBased) {
    hitgen::PairHitPacker packer(config.pairs_per_hit);
    CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
        state, [&](const std::vector<graph::Edge>& batch) { return packer.Add(batch); }));
    CROWDER_ASSIGN_OR_RETURN(state->pair_hits, packer.Finish());
    return Status::OK();
  }

  graph::PairGraphBuilder builder(static_cast<uint32_t>(state->dataset->table.num_records()));
  CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
      state, [&](const std::vector<graph::Edge>& batch) { return builder.Add(batch); }));
  CROWDER_ASSIGN_OR_RETURN(auto graph, builder.Build());
  hitgen::ClusterGeneratorOptions gen_options;
  gen_options.seed = config.seed;
  std::unique_ptr<hitgen::ClusterHitGenerator> generator =
      hitgen::MakeClusterGenerator(config.cluster_algorithm, gen_options);
  CROWDER_ASSIGN_OR_RETURN(state->cluster_hits, generator->Generate(&graph, config.cluster_size));
  graph.Reset();
  CROWDER_RETURN_NOT_OK(
      hitgen::ValidateClusterCover(state->cluster_hits, graph, config.cluster_size));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CrowdStage
// ---------------------------------------------------------------------------

namespace {

// Tiles [0, total) into contiguous ranges of at most `capacity` — the vote
// shard layout, which for pair-based HITs is also the partition layout.
std::vector<uint64_t> TileRanges(uint64_t total, uint64_t capacity) {
  std::vector<uint64_t> counts;
  for (uint64_t start = 0; start < total; start += capacity) {
    counts.push_back(std::min<uint64_t>(capacity, total - start));
  }
  return counts;
}

// Streaming pair-based crowd: one walk over the sorted stream. Each full
// partition is packed into HITs and simulated immediately; its votes are
// filed into the shard store and the partition's pairs are dropped before
// the next one loads. Partition capacity is a multiple of pairs_per_hit, so
// HIT boundaries — and with per-HIT seeding, every byte of the outcome —
// match the materialized pack.
Status RunPairPartitions(WorkflowState* state, crowd::CrowdSession* session) {
  const WorkflowConfig& config = *state->config;
  const uint64_t total = state->result.num_candidate_pairs;
  const uint64_t capacity =
      AlignedPartitionCapacity(state->partition_capacity, config.pairs_per_hit);

  state->votes =
      std::make_unique<VoteShardStore>(config.memory_budget_bytes, TileRanges(total, capacity));
  state->result.pipeline_stats.crowd_partitions = state->votes->num_shards();

  std::vector<similarity::ScoredPair> partition;
  partition.reserve(static_cast<size_t>(std::min<uint64_t>(capacity, total)));
  std::vector<graph::Edge> edges;
  uint64_t base = 0;

  const auto flush = [&]() -> Status {
    if (partition.empty()) return Status::OK();
    hitgen::PairHitPacker packer(config.pairs_per_hit);
    edges.clear();
    edges.reserve(partition.size());
    for (const auto& p : partition) edges.push_back({p.a, p.b});
    CROWDER_RETURN_NOT_OK(packer.Add(edges));
    CROWDER_ASSIGN_OR_RETURN(const auto hits, packer.Finish());
    CROWDER_RETURN_NOT_OK(session->StartPartition(partition));
    CROWDER_RETURN_NOT_OK(session->ProcessPairHits(hits));
    CROWDER_ASSIGN_OR_RETURN(const aggregate::VoteTable votes, session->TakePartitionVotes());
    for (size_t i = 0; i < votes.size(); ++i) {
      for (const aggregate::Vote& v : votes[i]) {
        CROWDER_RETURN_NOT_OK(state->votes->Append(base + i, v));
      }
    }
    base += partition.size();
    partition.clear();
    return Status::OK();
  };

  CROWDER_RETURN_NOT_OK(state->stream.ScanSorted([&](const PairBlock& block) {
    for (const auto& p : block) {
      partition.push_back(p);
      if (partition.size() >= capacity) CROWDER_RETURN_NOT_OK(flush());
    }
    return Status::OK();
  }));
  return flush();
}

// Streaming cluster-based crowd: HITs (already in the materialized order)
// are simulated in bounded ranges. A range's pair context — the candidate
// pairs among its records, with their global indices — is rebuilt by
// filtering the touched component buckets; SimulateClusterHit only ever
// looks up pairs among one HIT's records, so the filtered context answers
// exactly the lookups the full pair index would.
Status RunClusterRanges(WorkflowState* state, crowd::CrowdSession* session) {
  const WorkflowConfig& config = *state->config;
  const uint64_t total = state->result.num_candidate_pairs;
  const uint64_t capacity = state->partition_capacity;
  const auto& hits = state->cluster_hits;
  const ComponentBucketPlan& plan = *state->buckets;

  state->votes =
      std::make_unique<VoteShardStore>(config.memory_budget_bytes, TileRanges(total, capacity));

  // Bound the context of one range by the partition capacity: a HIT of k
  // records references at most k(k-1)/2 pairs.
  const uint64_t k = config.cluster_size;
  const uint64_t context_per_hit = std::max<uint64_t>(1, k * (k - 1) / 2);
  const size_t hits_per_range =
      capacity == UINT64_MAX
          ? std::max<size_t>(hits.size(), 1)
          : static_cast<size_t>(std::max<uint64_t>(1, capacity / context_per_hit));

  std::vector<uint32_t> mark(state->dataset->table.num_records(), 0);
  uint32_t generation = 0;
  std::vector<similarity::ScoredPair> context;
  std::vector<uint64_t> context_index;

  for (size_t begin = 0; begin < hits.size(); begin += hits_per_range) {
    const size_t end = std::min(hits.size(), begin + hits_per_range);
    ++generation;
    std::vector<uint32_t> touched;
    for (size_t h = begin; h < end; ++h) {
      for (uint32_t r : hits[h].records) {
        mark[r] = generation;
        const uint32_t bucket = plan.bucket_of_record[r];
        if (bucket != ComponentBucketPlan::kNoBucket) touched.push_back(bucket);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    context.clear();
    context_index.clear();
    for (uint32_t bucket : touched) {
      CROWDER_RETURN_NOT_OK(
          state->bucket_pairs->Scan(bucket, [&](const std::vector<IndexedPair>& block) {
            for (const auto& ip : block) {
              if (mark[ip.pair.a] == generation && mark[ip.pair.b] == generation) {
                context.push_back(ip.pair);
                context_index.push_back(ip.index);
              }
            }
            return Status::OK();
          }));
    }

    const std::vector<hitgen::ClusterBasedHit> range(hits.begin() + begin, hits.begin() + end);
    CROWDER_RETURN_NOT_OK(session->StartPartition(context));
    CROWDER_RETURN_NOT_OK(session->ProcessClusterHits(range));
    CROWDER_ASSIGN_OR_RETURN(const aggregate::VoteTable votes, session->TakePartitionVotes());
    for (size_t i = 0; i < votes.size(); ++i) {
      for (const aggregate::Vote& v : votes[i]) {
        CROWDER_RETURN_NOT_OK(state->votes->Append(context_index[i], v));
      }
    }
    ++state->result.pipeline_stats.crowd_partitions;
  }
  return Status::OK();
}

}  // namespace

Status CrowdStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  if (IsStreaming(*state)) {
    if (result.num_candidate_pairs == 0) return Status::OK();
    const crowd::CrowdPlatform platform(config.crowd, config.seed);
    CROWDER_ASSIGN_OR_RETURN(auto session,
                             crowd::CrowdSession::CreatePartitioned(
                                 platform, state->dataset->truth.entity_of, config.num_threads));
    if (config.hit_type == HitType::kPairBased) {
      CROWDER_RETURN_NOT_OK(RunPairPartitions(state, session.get()));
    } else {
      CROWDER_RETURN_NOT_OK(RunClusterRanges(state, session.get()));
    }
    CROWDER_RETURN_NOT_OK(state->votes->Finish());
    CROWDER_ASSIGN_OR_RETURN(result.crowd_stats, session->Finish());
    result.pipeline_stats.vote_spilled_bytes = state->votes->spilled_bytes();
    return Status::OK();
  }

  if (state->pair_hits.empty() && state->cluster_hits.empty()) {
    return Status::OK();  // machine pass pruned everything; crowd_stats stays zero
  }

  crowd::CrowdContext context;
  context.pairs = &result.candidate_pairs;
  context.entity_of = &state->dataset->truth.entity_of;
  const crowd::CrowdPlatform platform(config.crowd, config.seed);
  CROWDER_ASSIGN_OR_RETURN(auto session,
                           crowd::CrowdSession::Create(platform, context, config.num_threads));

  // One batch of everything: the session is batch-boundary-blind
  // (crowd/session.h), so feeding all HITs at once costs no generality,
  // copies nothing, and gives ParallelMap the widest dispatch. Incremental
  // producers can call Process*Hits per batch and get identical bytes.
  if (!state->pair_hits.empty()) {
    CROWDER_RETURN_NOT_OK(session->ProcessPairHits(state->pair_hits));
  } else {
    CROWDER_RETURN_NOT_OK(session->ProcessClusterHits(state->cluster_hits));
  }
  CROWDER_ASSIGN_OR_RETURN(result.crowd_stats, session->Finish());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AggregateStage
// ---------------------------------------------------------------------------

namespace {

// Streaming aggregation: fit (Dawid-Skene) or nothing (majority), then one
// synchronized walk — vote shards advance in lockstep with the sorted
// stream, so each pair meets its votes under the global index both sides
// agree on. The per-pair probability goes through the same helpers the
// materialized aggregators use, and shards tile the global pair order, so
// the ranked list is bitwise the materialized one even before the final
// sort.
Status RunStreamingAggregate(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;
  if (result.num_candidate_pairs == 0 || state->votes == nullptr) return Status::OK();
  VoteShardStore* votes = state->votes.get();

  aggregate::DawidSkeneModel model;
  const bool dawid_skene = config.aggregation == AggregationMethod::kDawidSkene;
  if (dawid_skene) {
    CROWDER_ASSIGN_OR_RETURN(model, aggregate::FitDawidSkeneSharded(votes, {}));
  }

  const data::Dataset& dataset = *state->dataset;
  result.ranked.reserve(static_cast<size_t>(result.num_candidate_pairs));
  aggregate::VoteTable shard_votes;
  size_t shard = 0;
  uint64_t shard_start = 0;
  uint64_t shard_end = 0;  // exclusive; 0 forces the first load
  uint64_t index = 0;
  CROWDER_RETURN_NOT_OK(state->stream.ScanSorted([&](const PairBlock& block) {
    for (const auto& p : block) {
      if (index >= shard_end) {
        shard = index == 0 ? 0 : shard + 1;
        CROWDER_ASSIGN_OR_RETURN(shard_votes, votes->LoadShard(shard));
        shard_start = votes->shard_start(shard);
        shard_end = shard_start + votes->shard_pairs(shard);
      }
      const auto& pair_votes = shard_votes[static_cast<size_t>(index - shard_start)];
      const double probability =
          dawid_skene ? aggregate::PosteriorMatchProbability(pair_votes, model)
                      : aggregate::MajorityMatchProbability(pair_votes);
      result.ranked.push_back(MakeRankedPair(p, probability, dataset));
      ++index;
    }
    return Status::OK();
  }));
  eval::SortByScoreDesc(&result.ranked);
  if (!result.ranked.empty()) {
    CROWDER_ASSIGN_OR_RETURN(result.pr_curve, eval::PrCurve(result.ranked, result.total_matches));
  }
  return Status::OK();
}

}  // namespace

Status AggregateStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  if (IsStreaming(*state)) return RunStreamingAggregate(state);

  std::vector<double> probabilities;
  if (config.aggregation == AggregationMethod::kMajorityVote) {
    probabilities = aggregate::MajorityVote(result.crowd_stats.votes);
  } else {
    CROWDER_ASSIGN_OR_RETURN(auto ds, aggregate::RunDawidSkene(result.crowd_stats.votes));
    probabilities = std::move(ds.match_probability);
  }

  result.ranked.reserve(result.candidate_pairs.size());
  for (size_t i = 0; i < result.candidate_pairs.size(); ++i) {
    result.ranked.push_back(
        MakeRankedPair(result.candidate_pairs[i], probabilities[i], *state->dataset));
  }
  eval::SortByScoreDesc(&result.ranked);
  if (!result.ranked.empty()) {
    CROWDER_ASSIGN_OR_RETURN(result.pr_curve,
                             eval::PrCurve(result.ranked, result.total_matches));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace crowder
