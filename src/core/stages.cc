#include "core/stages.h"

#include <algorithm>
#include <string>

#include "aggregate/majority_vote.h"
#include "common/logging.h"
#include "crowd/session.h"
#include "exec/thread_pool.h"
#include "graph/pair_graph.h"
#include "hitgen/pair_hit_generator.h"
#include "similarity/parallel_join.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace crowder {
namespace core {

namespace internal {

similarity::JoinInput BuildJoinInput(const data::Dataset& dataset, CandidateStrategy strategy,
                                     std::vector<std::string>* keys) {
  text::Tokenizer tokenizer;
  text::Vocabulary vocab;
  similarity::JoinInput input;
  input.sets.reserve(dataset.table.num_records());
  if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
    keys->reserve(dataset.table.num_records());
  }
  for (uint32_t r = 0; r < dataset.table.num_records(); ++r) {
    const std::string concatenated = dataset.table.ConcatenatedRecord(r);
    input.sets.push_back(
        similarity::MakeTokenSet(vocab.InternDocument(tokenizer.Tokenize(concatenated))));
    if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
      keys->push_back(tokenizer.normalizer().Normalize(concatenated));
    }
  }
  input.sources = dataset.table.sources;
  return input;
}

uint64_t CountCandidateMatches(const data::Dataset& dataset,
                               const std::vector<similarity::ScoredPair>& pairs) {
  uint64_t count = 0;
  for (const auto& p : pairs) {
    if (dataset.truth.IsMatch(p.a, p.b)) ++count;
  }
  return count;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// MachinePassStage
// ---------------------------------------------------------------------------

Status MachinePassStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  uint64_t candidate_matches = 0;
  if (config.execution_mode == ExecutionMode::kStreaming) {
    // Stream bounded blocks through state->stream, then rejoin the
    // materialized representation: the sorted scan reproduces MachinePass'
    // (a, b)-sorted output exactly, so everything downstream sees the same
    // bytes as the materialized mode.
    CROWDER_ASSIGN_OR_RETURN(
        const auto stream_stats,
        HybridWorkflow::MachinePassStream(*state->dataset, config.measure,
                                          config.likelihood_threshold, config.num_threads,
                                          &state->stream, config.stream_block_records));
    result.pipeline_stats.streamed_pairs = stream_stats.num_pairs;
    result.pipeline_stats.spilled_bytes = stream_stats.spilled_bytes;
    candidate_matches = stream_stats.candidate_matches;  // counted in the sink
    CROWDER_ASSIGN_OR_RETURN(result.candidate_pairs, state->stream.MaterializeSorted());
    // The stream's job is done: downstream stages walk candidate_pairs, so
    // keeping the blocks (and any spill file) alive would double the pair
    // footprint for the rest of the run.
    state->stream = PairStream();
  } else {
    CROWDER_ASSIGN_OR_RETURN(
        result.candidate_pairs,
        HybridWorkflow::MachinePass(*state->dataset, config.measure,
                                    config.likelihood_threshold, config.candidate_strategy,
                                    config.num_threads));
    candidate_matches = internal::CountCandidateMatches(*state->dataset, result.candidate_pairs);
  }
  result.machine_recall =
      static_cast<double>(candidate_matches) / static_cast<double>(result.total_matches);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HitGenStage
// ---------------------------------------------------------------------------

namespace {

// Feeds the candidate pairs to `consume` as edge batches: bounded batches in
// streaming mode (the incremental-builder path), one batch over the
// materialized vector otherwise. Both walk result.candidate_pairs — by this
// point the streaming machine pass has already materialized the sorted list
// for the crowd's vote table, so re-merging the (possibly spilled) stream
// would only repeat disk I/O for the identical edge sequence.
Status ForEachEdgeBatch(WorkflowState* state,
                        const std::function<Status(const std::vector<graph::Edge>&)>& consume) {
  const auto& pairs = state->result.candidate_pairs;
  const size_t batch_pairs =
      state->config->execution_mode == ExecutionMode::kStreaming ? size_t{8192} : pairs.size();
  std::vector<graph::Edge> edges;
  for (size_t begin = 0; begin < pairs.size(); begin += batch_pairs) {
    const size_t end = std::min(pairs.size(), begin + batch_pairs);
    edges.clear();
    edges.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) edges.push_back({pairs[i].a, pairs[i].b});
    CROWDER_RETURN_NOT_OK(consume(edges));
  }
  return Status::OK();
}

}  // namespace

Status HitGenStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  if (state->result.candidate_pairs.empty()) {
    CROWDER_LOG(Warning) << "machine pass pruned every pair; crowd is idle";
    return Status::OK();
  }

  if (config.hit_type == HitType::kPairBased) {
    hitgen::PairHitPacker packer(config.pairs_per_hit);
    CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
        state, [&](const std::vector<graph::Edge>& batch) { return packer.Add(batch); }));
    CROWDER_ASSIGN_OR_RETURN(state->pair_hits, packer.Finish());
    return Status::OK();
  }

  graph::PairGraphBuilder builder(static_cast<uint32_t>(state->dataset->table.num_records()));
  CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
      state, [&](const std::vector<graph::Edge>& batch) { return builder.Add(batch); }));
  CROWDER_ASSIGN_OR_RETURN(auto graph, builder.Build());
  hitgen::ClusterGeneratorOptions gen_options;
  gen_options.seed = config.seed;
  std::unique_ptr<hitgen::ClusterHitGenerator> generator =
      hitgen::MakeClusterGenerator(config.cluster_algorithm, gen_options);
  CROWDER_ASSIGN_OR_RETURN(state->cluster_hits, generator->Generate(&graph, config.cluster_size));
  graph.Reset();
  CROWDER_RETURN_NOT_OK(
      hitgen::ValidateClusterCover(state->cluster_hits, graph, config.cluster_size));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CrowdStage
// ---------------------------------------------------------------------------

Status CrowdStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;
  if (state->pair_hits.empty() && state->cluster_hits.empty()) {
    return Status::OK();  // machine pass pruned everything; crowd_stats stays zero
  }

  crowd::CrowdContext context;
  context.pairs = &result.candidate_pairs;
  context.entity_of = &state->dataset->truth.entity_of;
  const crowd::CrowdPlatform platform(config.crowd, config.seed);
  CROWDER_ASSIGN_OR_RETURN(auto session,
                           crowd::CrowdSession::Create(platform, context, config.num_threads));

  // One batch of everything: the session is batch-boundary-blind
  // (crowd/session.h), so feeding all HITs at once costs no generality,
  // copies nothing, and gives ParallelMap the widest dispatch. Incremental
  // producers can call Process*Hits per batch and get identical bytes.
  if (!state->pair_hits.empty()) {
    CROWDER_RETURN_NOT_OK(session->ProcessPairHits(state->pair_hits));
  } else {
    CROWDER_RETURN_NOT_OK(session->ProcessClusterHits(state->cluster_hits));
  }
  CROWDER_ASSIGN_OR_RETURN(result.crowd_stats, session->Finish());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AggregateStage
// ---------------------------------------------------------------------------

Status AggregateStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  std::vector<double> probabilities;
  if (config.aggregation == AggregationMethod::kMajorityVote) {
    probabilities = aggregate::MajorityVote(result.crowd_stats.votes);
  } else {
    CROWDER_ASSIGN_OR_RETURN(auto ds, aggregate::RunDawidSkene(result.crowd_stats.votes));
    probabilities = std::move(ds.match_probability);
  }

  result.ranked.reserve(result.candidate_pairs.size());
  for (size_t i = 0; i < result.candidate_pairs.size(); ++i) {
    const auto& p = result.candidate_pairs[i];
    eval::RankedPair rp;
    rp.a = p.a;
    rp.b = p.b;
    // Crowd posterior ranks first; the machine likelihood breaks ties among
    // equal posteriors (e.g. all-yes unanimous pairs).
    rp.score = probabilities[i] + 1e-7 * p.score;
    rp.is_match = state->dataset->truth.IsMatch(p.a, p.b);
    result.ranked.push_back(rp);
  }
  eval::SortByScoreDesc(&result.ranked);
  if (!result.ranked.empty()) {
    CROWDER_ASSIGN_OR_RETURN(result.pr_curve,
                             eval::PrCurve(result.ranked, result.total_matches));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace crowder
