#include "core/stages.h"

#include <algorithm>
#include <string>

#include "aggregate/agreement.h"
#include "aggregate/majority_vote.h"
#include "aggregate/partitioned.h"
#include "common/logging.h"
#include "graph/connected_components.h"
#include "graph/pair_graph.h"
#include "hitgen/packing.h"
#include "hitgen/pair_hit_generator.h"
#include "hitgen/two_tiered_generator.h"
#include "similarity/parallel_join.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace crowder {
namespace core {

namespace internal {

similarity::JoinInput BuildJoinInput(const data::Dataset& dataset, CandidateStrategy strategy,
                                     std::vector<std::string>* keys) {
  text::Tokenizer tokenizer;
  text::Vocabulary vocab;
  similarity::JoinInput input;
  input.sets.reserve(dataset.table.num_records());
  if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
    keys->reserve(dataset.table.num_records());
  }
  for (uint32_t r = 0; r < dataset.table.num_records(); ++r) {
    const std::string concatenated = dataset.table.ConcatenatedRecord(r);
    input.sets.push_back(
        similarity::MakeTokenSet(vocab.InternDocument(tokenizer.Tokenize(concatenated))));
    if (keys != nullptr && strategy == CandidateStrategy::kSortedNeighborhoodVerify) {
      keys->push_back(tokenizer.normalizer().Normalize(concatenated));
    }
  }
  input.sources = dataset.table.sources;
  return input;
}

uint64_t CountCandidateMatches(const data::Dataset& dataset,
                               const std::vector<similarity::ScoredPair>& pairs) {
  uint64_t count = 0;
  for (const auto& p : pairs) {
    if (dataset.truth.IsMatch(p.a, p.b)) ++count;
  }
  return count;
}

Result<ClusterBoundary> BuildClusterBoundary(const PairStream& stream, uint32_t num_records,
                                             uint64_t partition_capacity,
                                             uint32_t cluster_size,
                                             uint64_t memory_budget_bytes) {
  ClusterBoundary boundary;
  CROWDER_ASSIGN_OR_RETURN(boundary.plan,
                           PlanComponentBuckets(stream, num_records, partition_capacity));
  const ComponentBucketPlan& plan = boundary.plan;

  // Route every pair into its component's bucket, tagged with its global
  // sorted index (the vote table's pair-indexing contract).
  auto store = std::make_unique<ShardedSpillStore<IndexedPair>>(memory_budget_bytes);
  store->AddShards(plan.num_buckets());
  uint64_t next_index = 0;
  CROWDER_RETURN_NOT_OK(stream.ScanSorted([&](const PairBlock& block) {
    for (const auto& p : block) {
      IndexedPair ip;
      ip.index = next_index++;
      ip.pair = p;
      CROWDER_RETURN_NOT_OK(store->AppendRecord(plan.bucket_of_record[p.a], ip));
    }
    return Status::OK();
  }));
  CROWDER_RETURN_NOT_OK(store->Finish());

  // Decompose bucket by bucket; only one bucket's subgraph is ever resident.
  // Each subgraph is built over dense local ids (ascending-global order), so
  // its per-vertex arrays cost O(bucket records), not O(num_records); the
  // renaming is strictly monotone, hence invisible to every ordering and
  // tie-break the decomposition makes (see the header contract).
  std::vector<std::vector<std::vector<uint32_t>>> small_per_bucket(plan.num_buckets());
  std::vector<std::vector<std::vector<uint32_t>>> parts_per_bucket(plan.num_buckets());
  std::vector<graph::Edge> edges;
  std::vector<uint32_t> local_to_global;
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    // One pass over the bucket collects its edges — the same payload the
    // bucket's subgraph holds anyway, so this does not change the bound.
    edges.clear();
    CROWDER_RETURN_NOT_OK(store->Scan(b, [&](const std::vector<IndexedPair>& block) {
      for (const auto& ip : block) edges.push_back({ip.pair.a, ip.pair.b});
      return Status::OK();
    }));
    local_to_global.clear();
    local_to_global.reserve(edges.size() * 2);
    for (const graph::Edge& e : edges) {
      local_to_global.push_back(e.a);
      local_to_global.push_back(e.b);
    }
    std::sort(local_to_global.begin(), local_to_global.end());
    local_to_global.erase(std::unique(local_to_global.begin(), local_to_global.end()),
                          local_to_global.end());
    const auto local_of = [&](uint32_t global) {
      return static_cast<uint32_t>(
          std::lower_bound(local_to_global.begin(), local_to_global.end(), global) -
          local_to_global.begin());
    };
    for (graph::Edge& e : edges) e = {local_of(e.a), local_of(e.b)};

    graph::PairGraphBuilder builder(static_cast<uint32_t>(local_to_global.size()));
    CROWDER_RETURN_NOT_OK(builder.Add(edges));
    CROWDER_ASSIGN_OR_RETURN(auto graph, builder.Build());
    graph::SplitComponents split =
        graph::SplitBySize(graph::ConnectedComponents(graph), cluster_size);
    small_per_bucket[b] = std::move(split.small);
    for (const auto& lcc : split.large) {
      auto lcc_parts =
          hitgen::PartitionLcc(&graph, lcc, cluster_size, hitgen::PartitionOptions{});
      for (auto& part : lcc_parts) parts_per_bucket[b].push_back(std::move(part));
    }
    // Coverage invariant: PartitionLcc consumed every LCC edge; small
    // components are packed whole below, so their edges are covered too.
    for (const auto& comp : small_per_bucket[b]) graph.RemoveEdgesCoveredBy(comp);
    if (graph.HasAliveEdges()) {
      return Status::Internal("bucket decomposition left uncovered edges");
    }
    // Back to global record ids (monotone, so ascending order is kept).
    for (auto& comp : small_per_bucket[b]) {
      for (uint32_t& v : comp) v = local_to_global[v];
    }
    for (auto& part : parts_per_bucket[b]) {
      for (uint32_t& v : part) v = local_to_global[v];
    }
  }

  // Bottom tier, once and globally, over the materialized generator's
  // exact scc order.
  std::vector<std::vector<uint32_t>> sccs;
  for (auto& bucket_smalls : small_per_bucket) {
    for (auto& comp : bucket_smalls) sccs.push_back(std::move(comp));
  }
  for (auto& bucket_parts : parts_per_bucket) {
    for (auto& part : bucket_parts) sccs.push_back(std::move(part));
  }
  CROWDER_ASSIGN_OR_RETURN(boundary.hits,
                           hitgen::PackSccs(sccs, cluster_size, hitgen::PackingOptions{}));

  boundary.spilled_bytes = store->spilled_bytes();
  boundary.bucket_pairs = std::move(store);
  return boundary;
}

}  // namespace internal

namespace {

bool IsStreaming(const WorkflowState& state) {
  return state.config->execution_mode == ExecutionMode::kStreaming;
}

// The one place the ranked score is assembled, shared by both execution
// modes (the byte-identity contract depends on the formula never
// diverging): the crowd posterior ranks first; the machine likelihood
// breaks ties among equal posteriors (e.g. all-yes unanimous pairs).
eval::RankedPair MakeRankedPair(const similarity::ScoredPair& pair, double probability,
                                const data::Dataset& dataset) {
  eval::RankedPair rp;
  rp.a = pair.a;
  rp.b = pair.b;
  rp.score = probability + 1e-7 * pair.score;
  rp.is_match = dataset.truth.IsMatch(pair.a, pair.b);
  return rp;
}

}  // namespace

// ---------------------------------------------------------------------------
// MachinePassStage
// ---------------------------------------------------------------------------

Status MachinePassStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  uint64_t candidate_matches = 0;
  if (config.num_shards >= 2) {
    // Sharded machine pass (src/shard/): N workers, one owned band each,
    // merged through a PairStream's k-way merge — byte-identical to the
    // single-process pass (the ownership lemma + merge-identity argument,
    // shard/plan.h). Both execution modes route through the stream; the
    // materialized mode then rejoins its usual representation via
    // MaterializeSorted, which IS the sorted scan, so downstream stages see
    // the same bytes either way.
    shard::ShardExecOptions exec;
    exec.num_shards = config.num_shards;
    exec.worker_path = config.shard_worker_path;
    const bool streaming = IsStreaming(*state);
    PairStream local_stream(config.memory_budget_bytes);
    PairStream* stream = streaming ? &state->stream : &local_stream;
    CROWDER_ASSIGN_OR_RETURN(
        const auto stream_stats,
        HybridWorkflow::MachinePassSharded(*state->dataset, config.measure,
                                           config.likelihood_threshold, exec, stream,
                                           &result.shard_stats));
    result.num_candidate_pairs = stream_stats.num_pairs;
    candidate_matches = stream_stats.candidate_matches;
    if (streaming) {
      result.pipeline_stats.streamed_pairs = stream_stats.num_pairs;
      result.pipeline_stats.spilled_bytes = stream_stats.spilled_bytes;
    } else {
      CROWDER_ASSIGN_OR_RETURN(result.candidate_pairs, local_stream.MaterializeSorted());
    }
  } else if (IsStreaming(*state)) {
    // Stream bounded blocks through state->stream, where the pairs stay for
    // the rest of the run: the crowd boundary consumes them partition by
    // partition and the final ranked pass re-scans them, so the full sorted
    // list is never materialized. The sorted scan reproduces MachinePass'
    // (a, b)-sorted output exactly, so everything downstream sees the same
    // bytes as the materialized mode.
    CROWDER_ASSIGN_OR_RETURN(
        const auto stream_stats,
        HybridWorkflow::MachinePassStream(*state->dataset, config.measure,
                                          config.likelihood_threshold, config.num_threads,
                                          &state->stream, config.stream_block_records));
    result.pipeline_stats.streamed_pairs = stream_stats.num_pairs;
    result.pipeline_stats.spilled_bytes = stream_stats.spilled_bytes;
    result.num_candidate_pairs = stream_stats.num_pairs;
    candidate_matches = stream_stats.candidate_matches;  // counted in the sink
  } else {
    CROWDER_ASSIGN_OR_RETURN(
        result.candidate_pairs,
        HybridWorkflow::MachinePass(*state->dataset, config.measure,
                                    config.likelihood_threshold, config.candidate_strategy,
                                    config.num_threads));
    result.num_candidate_pairs = result.candidate_pairs.size();
    candidate_matches = internal::CountCandidateMatches(*state->dataset, result.candidate_pairs);
  }
  result.machine_recall =
      static_cast<double>(candidate_matches) / static_cast<double>(result.total_matches);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HitGenStage
// ---------------------------------------------------------------------------

namespace {

// Feeds the materialized candidate pairs to `consume` as one edge batch
// (the incremental builders are batch-boundary-blind; unit tests pin that).
Status ForEachEdgeBatch(WorkflowState* state,
                        const std::function<Status(const std::vector<graph::Edge>&)>& consume) {
  const auto& pairs = state->result.candidate_pairs;
  std::vector<graph::Edge> edges;
  edges.reserve(pairs.size());
  for (const auto& p : pairs) edges.push_back({p.a, p.b});
  return consume(edges);
}

}  // namespace

Status HitGenStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  if (state->result.num_candidate_pairs == 0) {
    CROWDER_LOG(Warning) << "machine pass pruned every pair; crowd is idle";
    return Status::OK();
  }

  if (IsStreaming(*state)) {
    state->partition_capacity =
        ResolvePartitionCapacity(config.crowd_partition_pairs, config.memory_budget_bytes);
    if (config.hit_type == HitType::kPairBased) {
      // Pair-based HITs close every pairs_per_hit pairs of the sorted
      // sequence, so the driver packs them partition-by-partition in the
      // same walk that posts them to the crowd — nothing to precompute.
      return Status::OK();
    }
    CROWDER_ASSIGN_OR_RETURN(
        internal::ClusterBoundary boundary,
        internal::BuildClusterBoundary(
            state->stream, static_cast<uint32_t>(state->dataset->table.num_records()),
            state->partition_capacity, config.cluster_size, config.memory_budget_bytes));
    state->cluster_hits = std::move(boundary.hits);
    state->result.pipeline_stats.boundary_spilled_bytes = boundary.spilled_bytes;
    state->buckets = std::make_unique<ComponentBucketPlan>(std::move(boundary.plan));
    state->bucket_pairs = std::move(boundary.bucket_pairs);
    return Status::OK();
  }

  if (config.hit_type == HitType::kPairBased) {
    hitgen::PairHitPacker packer(config.pairs_per_hit);
    CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
        state, [&](const std::vector<graph::Edge>& batch) { return packer.Add(batch); }));
    CROWDER_ASSIGN_OR_RETURN(state->pair_hits, packer.Finish());
    return Status::OK();
  }

  graph::PairGraphBuilder builder(static_cast<uint32_t>(state->dataset->table.num_records()));
  CROWDER_RETURN_NOT_OK(ForEachEdgeBatch(
      state, [&](const std::vector<graph::Edge>& batch) { return builder.Add(batch); }));
  CROWDER_ASSIGN_OR_RETURN(auto graph, builder.Build());
  hitgen::ClusterGeneratorOptions gen_options;
  gen_options.seed = config.seed;
  std::unique_ptr<hitgen::ClusterHitGenerator> generator =
      hitgen::MakeClusterGenerator(config.cluster_algorithm, gen_options);
  CROWDER_ASSIGN_OR_RETURN(state->cluster_hits, generator->Generate(&graph, config.cluster_size));
  graph.Reset();
  CROWDER_RETURN_NOT_OK(
      hitgen::ValidateClusterCover(state->cluster_hits, graph, config.cluster_size));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AggregateStage
// ---------------------------------------------------------------------------

namespace {

// Streaming aggregation: fit (Dawid-Skene) or nothing (majority), then one
// synchronized walk — vote shards advance in lockstep with the sorted
// stream, so each pair meets its votes under the global index both sides
// agree on. The per-pair probability goes through the same helpers the
// materialized aggregators use, and shards tile the global pair order, so
// the ranked list is bitwise the materialized one even before the final
// sort.
//
// GCC 12 flags the inlined destructor of the Result<DawidSkeneModel>
// temporary below with -Warray-bounds/-Wstringop-overflow false positives
// (the well-known shared_ptr _Sp_counted_base pattern, GCC PR105705); the
// suppression is scoped to this function and compiled out elsewhere.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
Status RunStreamingAggregate(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;
  if (result.num_candidate_pairs == 0 || state->votes == nullptr) return Status::OK();
  VoteShardStore* votes = state->votes.get();
  // The revision path: banned workers' votes vanish at the shard boundary,
  // so every downstream decision is re-derived from the surviving votes —
  // while the store itself keeps the unfiltered audit truth. With no bans
  // the view is the identity and the bytes are the pre-filter ones.
  aggregate::FilteredVoteShardSource filtered(votes, state->banned_workers);

  aggregate::DawidSkeneModel model;
  const bool dawid_skene = config.aggregation == AggregationMethod::kDawidSkene;
  if (dawid_skene) {
    CROWDER_ASSIGN_OR_RETURN(model, aggregate::FitDawidSkeneSharded(&filtered, {}));
  }

  const data::Dataset& dataset = *state->dataset;
  result.ranked.reserve(static_cast<size_t>(result.num_candidate_pairs));
  aggregate::VoteTable shard_votes;
  size_t shard = 0;
  uint64_t shard_start = 0;
  uint64_t shard_end = 0;  // exclusive; 0 forces the first load
  uint64_t index = 0;
  // Closure-inferred verdicts override voteless pairs as the walk passes
  // them: the map is ordered by global index, the walk ascends it.
  auto inferred = state->inferred_verdicts.cbegin();
  const auto inferred_end = state->inferred_verdicts.cend();
  CROWDER_RETURN_NOT_OK(state->stream.ScanSorted([&](const PairBlock& block) {
    for (const auto& p : block) {
      if (index >= shard_end) {
        shard = index == 0 ? 0 : shard + 1;
        CROWDER_ASSIGN_OR_RETURN(shard_votes, filtered.LoadShard(shard));
        shard_start = votes->shard_start(shard);
        shard_end = shard_start + votes->shard_pairs(shard);
      }
      const auto& pair_votes = shard_votes[static_cast<size_t>(index - shard_start)];
      double probability =
          dawid_skene ? aggregate::PosteriorMatchProbability(pair_votes, model)
                      : aggregate::MajorityMatchProbability(pair_votes);
      if (inferred != inferred_end && inferred->first == index) {
        probability = inferred->second ? 1.0 : 0.0;
        ++inferred;
      }
      result.ranked.push_back(MakeRankedPair(p, probability, dataset));
      ++index;
    }
    return Status::OK();
  }));
  eval::SortByScoreDesc(&result.ranked);
  if (!result.ranked.empty()) {
    CROWDER_ASSIGN_OR_RETURN(result.pr_curve, eval::PrCurve(result.ranked, result.total_matches));
  }
  return Status::OK();
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

Status AggregateStage::Run(WorkflowState* state) {
  const WorkflowConfig& config = *state->config;
  WorkflowResult& result = state->result;

  if (IsStreaming(*state)) return RunStreamingAggregate(state);

  // The materialized revision path: decisions are derived from a filtered
  // copy of the vote table; the original stays in crowd_stats.votes as the
  // audit trail. Without bans the original table is used directly.
  const aggregate::VoteTable* table = &result.crowd_stats.votes;
  aggregate::VoteTable surviving;
  if (!state->banned_workers.empty()) {
    surviving = result.crowd_stats.votes;
    aggregate::RemoveVotesFrom(&surviving, state->banned_workers);
    table = &surviving;
  }

  std::vector<double> probabilities;
  if (config.aggregation == AggregationMethod::kMajorityVote) {
    probabilities = aggregate::MajorityVote(*table);
  } else {
    CROWDER_ASSIGN_OR_RETURN(auto ds, aggregate::RunDawidSkene(*table));
    probabilities = std::move(ds.match_probability);
  }
  // Closure-inferred verdicts (kInferenceOrdered) have no votes; their
  // probability is the inference, not "never judged".
  for (const auto& [global, verdict] : state->inferred_verdicts) {
    if (global < probabilities.size()) probabilities[global] = verdict ? 1.0 : 0.0;
  }

  result.ranked.reserve(result.candidate_pairs.size());
  for (size_t i = 0; i < result.candidate_pairs.size(); ++i) {
    result.ranked.push_back(
        MakeRankedPair(result.candidate_pairs[i], probabilities[i], *state->dataset));
  }
  eval::SortByScoreDesc(&result.ranked);
  if (!result.ranked.empty()) {
    CROWDER_ASSIGN_OR_RETURN(result.pr_curve,
                             eval::PrCurve(result.ranked, result.total_matches));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace crowder
