// Umbrella header: include this to use the CrowdER library.
//
//   #include "core/crowder.h"
//
//   crowder::data::RestaurantConfig cfg;
//   auto dataset = crowder::data::GenerateRestaurant(cfg).ValueOrDie();
//   crowder::core::WorkflowConfig wf;
//   wf.likelihood_threshold = 0.35;
//   auto result = crowder::core::HybridWorkflow(wf).Run(dataset).ValueOrDie();
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#ifndef CROWDER_CORE_CROWDER_H_
#define CROWDER_CORE_CROWDER_H_

#include "aggregate/dawid_skene.h"
#include "aggregate/majority_vote.h"
#include "aggregate/partitioned.h"
#include "aggregate/votes.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/budget_planner.h"
#include "core/driver.h"
#include "core/partition.h"
#include "core/pipeline.h"
#include "core/resolution.h"
#include "core/spill.h"
#include "core/stages.h"
#include "core/workflow.h"
#include "crowd/backend.h"
#include "crowd/crowd_model.h"
#include "crowd/platform.h"
#include "crowd/vote_log.h"
#include "crowd/worker.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/statistics.h"
#include "eval/cluster_metrics.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "graph/connected_components.h"
#include "graph/pair_graph.h"
#include "graph/traversal.h"
#include "graph/union_find.h"
#include "hitgen/approximation_generator.h"
#include "hitgen/baseline_generators.h"
#include "hitgen/cluster_generator.h"
#include "hitgen/comparison_model.h"
#include "hitgen/hit.h"
#include "hitgen/hit_renderer.h"
#include "hitgen/packing.h"
#include "hitgen/pair_hit_generator.h"
#include "hitgen/two_tiered_generator.h"
#include "lp/cutting_stock.h"
#include "lp/knapsack.h"
#include "lp/simplex.h"
#include "ml/active_learning.h"
#include "ml/features.h"
#include "ml/linear_svm.h"
#include "ml/scaler.h"
#include "similarity/blocking.h"
#include "similarity/edit_distance.h"
#include "similarity/parallel_join.h"
#include "similarity/set_similarity.h"
#include "similarity/similarity_join.h"
#include "similarity/sorted_neighborhood.h"
#include "similarity/string_similarity.h"
#include "text/normalizer.h"
#include "text/qgram.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

#endif  // CROWDER_CORE_CROWDER_H_
