/// \file
/// \brief `WorkflowDriver`: the CrowdER workflow as a resumable step
/// machine, with the crowd on the outside.
///
/// `HybridWorkflow::Run` answers "run everything, simulate the crowd, give
/// me the result". The driver inverts that control flow for embedders who
/// *are* the crowd — replay harnesses, adaptive question selectors, live
/// platform adapters: it runs the machine pass and HIT generation, then
/// surfaces the crowd work one **round** (HIT batch) at a time and waits
/// for votes before moving on:
///
/// \code
///   core::WorkflowDriver driver(config);
///   CROWDER_RETURN_NOT_OK(driver.Start(dataset));
///   while (!driver.done()) {
///     const crowd::HitBatch& batch = driver.PendingHits();
///     crowd::VoteBatch votes = AnswerSomehow(batch);   // your crowd here
///     CROWDER_RETURN_NOT_OK(driver.SubmitVotes(std::move(votes)));
///     CROWDER_RETURN_NOT_OK(driver.Step());
///   }
///   CROWDER_ASSIGN_OR_RETURN(core::WorkflowResult result, driver.TakeResult());
/// \endcode
///
/// `HybridWorkflow::Run` itself is exactly this loop over a
/// `crowd::CrowdBackend` (core/workflow.cc), so every workflow test
/// exercises the driver path.
///
/// Rounds follow the execution mode: one round carrying every HIT in
/// kMaterialized; one round per crowd partition (pair-based HITs) or HIT
/// range (cluster-based) in kStreaming — the PR-3/4 staged machinery
/// underneath is unchanged, and the results are bitwise those of the
/// pre-driver workflow in both modes (golden-pinned).
///
/// Error discipline (the `failed_` latch, as in crowd::CrowdSession):
/// submitting corrupt vote *data* — a vote on a pair outside the round's
/// context, an assignment for a HIT outside the round — rejects the batch
/// without filing anything AND poisons the driver, so a partial or
/// untrustworthy crowd transport can never leak into a result. Protocol
/// misuse (Step before votes, a second SubmitVotes for the same round,
/// SubmitVotes after done(), TakeResult before done(), a vote on a pair the
/// answer closure already resolved by inference) returns a clean error and
/// leaves the driver usable.
///
/// Question selection (config.question_policy, core/question_policy.h):
/// under the default kFixedOrder the rounds above are the whole story —
/// bitwise unchanged. Under kInferenceOrdered each round source's context
/// (the materialized pair list / one pair partition / one cluster-HIT
/// range) becomes a *base context* served as adaptive **sub-rounds**:
/// between sub-rounds the driver folds the answered pairs'
/// surviving-vote *consensus* (unanimous verdicts only — see
/// SurvivingConsensus in driver.cc) into a graph::AnswerClosure, records
/// every closure-implied
/// pair as inferred (never posting it), and asks the policy-ranked top of
/// the rest. Streaming mode therefore reorders only within the resident
/// partition — the partition sequence itself is the stream's order.
/// Composition with the crowd defenses: repair rounds re-post
/// under-replicated pairs of the current sub-round context as usual, and
/// when a ban changes the surviving consensus the closure is rebuilt from
/// the asked-pair log and every inferred verdict is re-validated — a
/// verdict the rebuilt closure no longer implies is retracted and its pair
/// conservatively re-asked (the retraction contract; see
/// docs/ARCHITECTURE.md). The asked-pair log keeps one entry per asked
/// pair (with its votes) resident for the whole run — the adaptive mode's
/// documented O(pairs asked) memory cost on top of the streaming budget.
#ifndef CROWDER_CORE_DRIVER_H_
#define CROWDER_CORE_DRIVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/question_policy.h"
#include "core/stages.h"
#include "core/workflow.h"
#include "crowd/backend.h"
#include "graph/answer_closure.h"

namespace crowder {
namespace core {

/// \brief Step/poll workflow execution: Start → (PendingHits → SubmitVotes →
/// Step)* → TakeResult. See the file comment for the loop shape.
///
/// Not thread-safe; drive it from one thread. The dataset passed to Start
/// must outlive the driver (the driver keeps a pointer, like the stages).
class WorkflowDriver {
 public:
  /// \brief Holds the configuration; no work happens until Start.
  explicit WorkflowDriver(WorkflowConfig config);
  /// \brief Drops the run's state (temp spill files included).
  ~WorkflowDriver();

  WorkflowDriver(const WorkflowDriver&) = delete;             ///< not copyable
  WorkflowDriver& operator=(const WorkflowDriver&) = delete;  ///< not copyable

  /// \brief Validates the config, runs the machine pass and HIT generation
  /// (both execution modes), and prepares the first crowd round. After a
  /// successful Start either done() is true (nothing for the crowd to do)
  /// or PendingHits() carries the first batch.
  Status Start(const data::Dataset& dataset);

  /// \brief True once the ranked result is ready (all rounds answered and
  /// aggregated — or there was never crowd work to do).
  bool done() const { return phase_ == Phase::kDone || phase_ == Phase::kTaken; }

  /// \brief The HIT batch awaiting crowd answers. Valid — and stable — from
  /// the Start/Step that prepared it until the Step that retires it; an
  /// empty batch when nothing is pending.
  const crowd::HitBatch& PendingHits() const { return pending_; }

  /// \brief Files the crowd's answers for the pending batch: every vote
  /// must name a pair of the batch's context and every assignment a HIT of
  /// the batch (validated before anything is filed; a violation poisons the
  /// driver — see the latch discipline in the file comment). Votes are
  /// filed in the given order; per-pair cast order is what aggregation
  /// sees.
  ///
  /// Asynchronous transports may deliver a round in pieces: a batch with
  /// `complete = false` is filed but leaves the round open for further
  /// submissions; the batch with `complete = true` (the synchronous default)
  /// closes it. Across all of a round's deliveries each HIT may appear at
  /// most once — a re-delivery is corrupt data and latches the failure.
  /// After the completing batch, further submissions for the round are
  /// protocol errors ("duplicate vote submission"), and submissions naming
  /// earlier rounds' HITs fail the batch-range check — late votes are filed
  /// exactly once or rejected by name, never silently double-counted.
  Status SubmitVotes(crowd::VoteBatch votes);

  /// \brief Installs an admission filter (crowd/worker_filter.h), consulted
  /// after every answered round with the lifetime per-worker statistics; the
  /// ids it returns are banned — cumulatively and *retroactively*: at
  /// aggregation every vote a banned worker ever cast is excluded and the
  /// affected pairs' decisions are re-derived from the surviving votes (the
  /// revision path). Not owned; must outlive the driver. Call before the
  /// first Step; overrides the built-in filter `config.filter_workers`
  /// would install.
  void SetWorkerFilter(crowd::WorkerFilter* filter) { filter_ = filter; }

  /// \brief Retires the answered round: prepares the next round, or — after
  /// the last one — runs aggregation, after which done() is true. Requires
  /// SubmitVotes first.
  Status Step();

  /// \brief Installs the crowd's run statistics (cost, latency, audit
  /// trail — typically `CrowdBackend::Finish()`'s result) into the pending
  /// WorkflowResult, preserving the vote table the driver assembled.
  /// Optional: without it the result carries the driver's own fallback
  /// counts (HITs, assignments, durations) with zero cost/latency. Only
  /// legal when done() and before TakeResult.
  Status SubmitCrowdStats(crowd::CrowdRunResult stats);

  /// \brief Terminal: moves the finished WorkflowResult out. Errors before
  /// done() — e.g. with a submitted-but-not-stepped round ("partial batch")
  /// — and on a poisoned driver.
  Result<WorkflowResult> TakeResult();

  /// \brief The configuration the driver was built with.
  const WorkflowConfig& config() const { return config_; }

 private:
  enum class Phase { kIdle, kAwaitingVotes, kDone, kTaken };

  /// Prepares the next round into pending_ or, when rounds are exhausted,
  /// finalizes (vote store seal, crowd timing, aggregation).
  Status Advance();
  Status PrepareMaterializedRound();
  Status PreparePairPartitionRound();
  Status PrepareClusterRangeRound();
  /// One sorted pass joining the component-bucket pair stores against the
  /// per-record HIT-range lists into range_pairs_ (Start, cluster-based
  /// streaming only; timed as PipelineStats::cluster_index_wall_ms).
  /// Releases state_->bucket_pairs — the range index subsumes it.
  Status BuildClusterRangeIndex();
  /// Rebuilds round_pair_index_ (and, for rounds whose context is not the
  /// global order, round_global_index_) for the pending context.
  void IndexRoundPairs(const std::vector<similarity::ScoredPair>& pairs);
  /// Closes the books on the answered round (Step, before Advance): records
  /// CrowdRoundStats (votes, Fleiss' kappa), folds the round's votes into
  /// the lifetime worker statistics, and consults the filter.
  void FinishRound();
  /// The fault-tolerance half of revision (config.repair_rounds): when bans
  /// leave pairs of the answered context under-replicated, stages a repair
  /// round re-posting those pairs as fresh pair-based HITs over the same
  /// context. Returns true when a repair round is now pending.
  Result<bool> PrepareRepairRound();
  Status Finalize();

  // ---- Adaptive question selection (kInferenceOrdered only). ----
  bool adaptive() const {
    return config_.question_policy == QuestionPolicyKind::kInferenceOrdered;
  }
  /// The adaptive round dispatcher: drains the re-ask queue, loads base
  /// contexts from the mode's round source, sweeps the closure over them,
  /// and posts policy-ranked selection sub-rounds until a round is pending
  /// or everything is resolved.
  Status PrepareAdaptiveRound();
  /// Pulls the next base context (whole pair list / pair partition /
  /// cluster-HIT range) into base_unresolved_; leaves base_active_ false
  /// when the source is exhausted.
  Status LoadNextBaseContext();
  /// Drops every pending question the closure (or an earlier context)
  /// already resolves, recording fresh verdicts as inferred.
  void SweepClosure();
  /// Posts the policy-ranked top of base_unresolved_ as one sub-round.
  Status PostSelectionRound();
  /// Posts retracted pairs (the conservative re-ask path) as pair HITs.
  Status PostReaskRound();
  /// Pairs per selection sub-round (config.selection_batch_pairs; 0=auto).
  uint64_t ResolveSelectionBatch() const;
  /// After a sub-round (and its repairs) is answered: files its pairs into
  /// the asked log and folds their surviving-vote consensus (unanimous
  /// verdicts only) into the closure.
  void FoldAnsweredRound();
  /// When the ban set grew: rebuilds the closure from the asked log's
  /// surviving votes and retracts (queues for re-ask) every inferred
  /// verdict the rebuilt closure no longer implies.
  void MaybeRebuildClosure();

  WorkflowConfig config_;
  std::unique_ptr<WorkflowState> state_;
  Phase phase_ = Phase::kIdle;
  /// Corrupt vote data was rejected; every later call fails cleanly.
  bool failed_ = false;
  bool votes_submitted_ = false;

  // ---- The pending round. ----
  crowd::HitBatch pending_;
  /// Round-owned backing storage for pending_ (streaming rounds; the
  /// materialized round points into WorkflowState instead).
  std::vector<similarity::ScoredPair> round_pairs_;
  std::vector<hitgen::PairBasedHit> round_pair_hits_;
  std::vector<hitgen::ClusterBasedHit> round_cluster_hits_;
  /// PairKey(a, b) -> position in the pending context.
  std::unordered_map<uint64_t, size_t> round_pair_index_;
  /// Position in the pending context -> global pair index (vote filing key).
  std::vector<uint64_t> round_global_index_;
  /// Global HIT counter across rounds (== first_hit of the next round).
  uint32_t next_hit_ = 0;
  /// HITs of the pending round already filed — the duplicate-delivery check
  /// across partial submissions.
  std::unordered_set<uint32_t> round_hits_filed_;
  /// The answered context's votes (context position, vote) in filing order —
  /// the raw material of FinishRound's kappa and approval statistics and of
  /// PrepareRepairRound's surviving-vote counts. Accumulates across a
  /// round's repair rounds (same context); round_votes_reviewed_ marks the
  /// prefix FinishRound has already folded into the statistics.
  std::vector<std::pair<size_t, aggregate::Vote>> round_votes_;
  size_t round_votes_reviewed_ = 0;
  /// Repair rounds staged for the current context so far (capped by
  /// config.repair_rounds).
  uint32_t repair_rounds_used_ = 0;

  // ---- Crowd defenses (crowd/worker_filter.h). ----
  crowd::WorkerFilter* filter_ = nullptr;  ///< not owned
  /// The built-in filter when config_.filter_workers asked for one.
  std::unique_ptr<crowd::WorkerFilter> owned_filter_;
  /// Lifetime per-worker statistics; an ordered map so Review sees
  /// ascending worker ids (the determinism contract).
  std::map<uint32_t, crowd::WorkerStats> worker_stats_;
  /// Every worker banned so far (cumulative across rounds).
  std::unordered_set<uint32_t> banned_workers_;

  // ---- Materialized filing target. ----
  aggregate::VoteTable vote_table_;

  // ---- Streaming pair-partition rounds. ----
  std::optional<PairStream::SortedCursor> cursor_;
  uint64_t aligned_capacity_ = 0;
  uint64_t next_pair_base_ = 0;

  // ---- Streaming cluster-range rounds. ----
  size_t next_range_begin_ = 0;
  size_t hits_per_range_ = 0;
  /// The inverted pair→HIT-range index: shard r holds, in (bucket asc,
  /// append order) order, every candidate pair both of whose records appear
  /// in range r's HITs. Built once by BuildClusterRangeIndex (Start); each
  /// round then replays its own shard instead of re-scanning the component
  /// buckets it touches.
  std::unique_ptr<ShardedSpillStore<IndexedPair>> range_pairs_;

  // ---- Adaptive question selection (kInferenceOrdered only; empty and
  //      untouched under kFixedOrder). ----
  /// The ranking strategy (MakeQuestionPolicy(config.question_policy)).
  std::unique_ptr<QuestionPolicy> policy_;
  /// Positive + negative transitive closure over the answered pairs.
  std::unique_ptr<graph::AnswerClosure> closure_;
  /// One asked pair's resident record: identity and every vote it ever
  /// received (across sub-rounds, repairs, and re-asks) — the rebuild
  /// source of the retraction contract.
  struct AskedPair {
    similarity::ScoredPair pair;
    std::vector<aggregate::Vote> votes;
  };
  /// Global pair index -> asked record. Ordered for deterministic rebuild.
  std::map<uint64_t, AskedPair> asked_;
  /// One closure-resolved pair: identity and the inferred verdict.
  struct InferredPair {
    similarity::ScoredPair pair;
    bool verdict = false;
  };
  /// Global pair index -> inferred verdict (ordered; copied into
  /// WorkflowState::inferred_verdicts at Finalize).
  std::map<uint64_t, InferredPair> inferred_;
  /// PairKey -> global index of the inferred pairs — the SubmitVotes check
  /// that a vote on a closure-resolved pair is a clean protocol error.
  std::unordered_map<uint64_t, uint64_t> inferred_key_;
  /// Pairs inferred since the last FinishRound (the per-round savings stat).
  uint64_t inferred_new_ = 0;
  /// Retracted pairs awaiting their conservative re-ask, in retraction
  /// order; reask_pending_ mirrors it for membership checks.
  std::vector<PendingQuestion> reask_queue_;
  std::unordered_set<uint64_t> reask_pending_;
  /// banned_workers_ size at the last closure (re)build — the trigger for
  /// MaybeRebuildClosure.
  size_t banned_seen_ = 0;
  // The resident base context being served as sub-rounds.
  bool base_active_ = false;
  /// Materialized mode's single base context was already loaded.
  bool materialized_served_ = false;
  /// Questions of the base context not yet asked or inferred.
  std::vector<PendingQuestion> base_unresolved_;
  /// Cluster-based only: the context's HITs and which were already posted
  /// (a HIT whose pairs are all resolved is skipped outright).
  std::vector<hitgen::ClusterBasedHit> base_cluster_hits_;
  std::vector<bool> base_hit_posted_;

  /// Wall clock of the crowd phase (rounds start → aggregation), reported
  /// as the "crowd" stage timing.
  WallTimer crowd_timer_;
  /// Wall clock of the pending round (prepare → Step), recorded into
  /// PipelineStats::round_wall_micros — the per-round spread the aggregate
  /// "crowd" timing flattens.
  WallTimer round_timer_;
};

}  // namespace core
}  // namespace crowder

#endif  // CROWDER_CORE_DRIVER_H_
