#include "eval/cluster_metrics.h"

#include <unordered_map>

namespace crowder {
namespace eval {

Result<BCubedScore> BCubed(const std::vector<uint32_t>& predicted_cluster_of,
                           const std::vector<uint32_t>& true_entity_of) {
  if (predicted_cluster_of.empty() || predicted_cluster_of.size() != true_entity_of.size()) {
    return Status::InvalidArgument("labelings must be non-empty and equal-sized");
  }
  const size_t n = predicted_cluster_of.size();

  // Group membership lists.
  std::unordered_map<uint32_t, std::vector<uint32_t>> pred;
  std::unordered_map<uint32_t, std::vector<uint32_t>> truth;
  for (uint32_t r = 0; r < n; ++r) {
    pred[predicted_cluster_of[r]].push_back(r);
    truth[true_entity_of[r]].push_back(r);
  }

  // |pred(r) ∩ true(r)| via joint-label counts.
  std::unordered_map<uint64_t, uint32_t> joint;
  for (uint32_t r = 0; r < n; ++r) {
    const uint64_t key =
        (static_cast<uint64_t>(predicted_cluster_of[r]) << 32) | true_entity_of[r];
    ++joint[key];
  }

  BCubedScore score;
  for (uint32_t r = 0; r < n; ++r) {
    const uint64_t key =
        (static_cast<uint64_t>(predicted_cluster_of[r]) << 32) | true_entity_of[r];
    const double overlap = joint.at(key);
    score.precision += overlap / pred.at(predicted_cluster_of[r]).size();
    score.recall += overlap / truth.at(true_entity_of[r]).size();
  }
  score.precision /= static_cast<double>(n);
  score.recall /= static_cast<double>(n);
  score.f1 = (score.precision + score.recall) == 0.0
                 ? 0.0
                 : 2.0 * score.precision * score.recall / (score.precision + score.recall);
  return score;
}

}  // namespace eval
}  // namespace crowder
