// Evaluation metrics for entity resolution outputs (§7.3): precision, recall
// and precision-recall curves over ranked candidate-pair lists.
#ifndef CROWDER_EVAL_METRICS_H_
#define CROWDER_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace crowder {
namespace eval {

/// \brief One candidate pair in a ranked result list.
struct RankedPair {
  uint32_t a = 0;
  uint32_t b = 0;
  /// Ranking key: machine likelihood, classifier score, or crowd posterior.
  double score = 0.0;
  /// Ground truth.
  bool is_match = false;
};

/// \brief Sorts by descending score; ties broken by (a, b) for determinism.
void SortByScoreDesc(std::vector<RankedPair>* pairs);

/// \brief Point of a precision-recall curve: the first `n` pairs of the
/// ranked list are predicted matches.
struct PrPoint {
  size_t n = 0;
  double precision = 0.0;
  double recall = 0.0;
};

/// \brief Computes the PR curve of a ranked list. `total_matches` is the
/// number of matching pairs in the *dataset* (not just the list), so a list
/// that misses matches cannot reach recall 1 — exactly how the paper's
/// hybrid curves cap at the machine pass's recall. One point per rank.
Result<std::vector<PrPoint>> PrCurve(std::vector<RankedPair> pairs, uint64_t total_matches);

/// \brief Downsamples a curve to at most `max_points` (always keeps first
/// and last), for printing.
std::vector<PrPoint> Downsample(const std::vector<PrPoint>& curve, size_t max_points);

/// \brief Precision at (or just above) the given recall level; 0 if the
/// curve never reaches it. Used in EXPERIMENTS.md comparisons.
double PrecisionAtRecall(const std::vector<PrPoint>& curve, double recall);

/// \brief Maximum F1 over the curve.
double BestF1(const std::vector<PrPoint>& curve);

/// \brief Area under the PR curve (step interpolation on recall).
double AreaUnderPr(const std::vector<PrPoint>& curve);

}  // namespace eval
}  // namespace crowder

#endif  // CROWDER_EVAL_METRICS_H_
