#include "eval/report.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace crowder {
namespace eval {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CROWDER_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) sep += std::string(widths[c] + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string AsciiChart(const std::vector<Series>& series, const std::string& x_label,
                       const std::string& y_label, int width, int height) {
  static const char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
  double xmin = 1e300;
  double xmax = -1e300;
  double ymin = 1e300;
  double ymax = -1e300;
  bool any = false;
  for (const auto& s : series) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) return "(no data)\n";
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<size_t>(height), std::string(width, ' '));
  for (size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (size_t i = 0; i < series[s].x.size(); ++i) {
      const int col = static_cast<int>(
          std::lround((series[s].x[i] - xmin) / (xmax - xmin) * (width - 1)));
      const int row = static_cast<int>(
          std::lround((series[s].y[i] - ymin) / (ymax - ymin) * (height - 1)));
      grid[static_cast<size_t>(height - 1 - row)][static_cast<size_t>(col)] = glyph;
    }
  }

  std::string out;
  out += y_label + " (" + FormatDouble(ymin, 1) + " .. " + FormatDouble(ymax, 1) + ")\n";
  for (const auto& line : grid) out += "  |" + line + "\n";
  out += "  +" + std::string(width, '-') + "\n";
  out += "   " + x_label + " (" + FormatDouble(xmin, 2) + " .. " + FormatDouble(xmax, 2) + ")\n";
  out += "   legend:";
  for (size_t s = 0; s < series.size(); ++s) {
    out += " ";
    out.push_back(kGlyphs[s % sizeof(kGlyphs)]);
    out += "=" + series[s].name;
  }
  out += "\n";
  return out;
}

std::string PrChart(const std::vector<std::pair<std::string, std::vector<PrPoint>>>& curves,
                    int width, int height) {
  std::vector<Series> series;
  for (const auto& [name, curve] : curves) {
    Series s;
    s.name = name;
    const std::vector<PrPoint> pts = Downsample(curve, 120);
    for (const PrPoint& pt : pts) {
      s.x.push_back(pt.recall * 100.0);
      s.y.push_back(pt.precision * 100.0);
    }
    series.push_back(std::move(s));
  }
  return AsciiChart(series, "recall %", "precision %", width, height);
}

}  // namespace eval
}  // namespace crowder
