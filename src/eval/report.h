// Text rendering for the benchmark harnesses: aligned tables (for the
// paper's Table 2) and ASCII charts (for its figures), so every bench binary
// prints the same rows/series the paper reports without any plotting
// dependency.
#ifndef CROWDER_EVAL_REPORT_H_
#define CROWDER_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace crowder {
namespace eval {

/// \brief Fixed-width table: set a header, add string rows, render.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief One named series of (x, y) points for an ASCII chart.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// \brief Renders series as an ASCII scatter/line chart (each series gets a
/// distinct glyph), with axis ranges fit to the data. Intended for quick
/// shape comparison against the paper's figures.
std::string AsciiChart(const std::vector<Series>& series, const std::string& x_label,
                       const std::string& y_label, int width = 72, int height = 20);

/// \brief Convenience: renders a PR curve set as an ASCII chart
/// (x = recall %, y = precision %).
std::string PrChart(const std::vector<std::pair<std::string, std::vector<PrPoint>>>& curves,
                    int width = 72, int height = 20);

}  // namespace eval
}  // namespace crowder

#endif  // CROWDER_EVAL_REPORT_H_
