#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace crowder {
namespace eval {

void SortByScoreDesc(std::vector<RankedPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(), [](const RankedPair& x, const RankedPair& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
}

Result<std::vector<PrPoint>> PrCurve(std::vector<RankedPair> pairs, uint64_t total_matches) {
  if (total_matches == 0) {
    return Status::InvalidArgument("total_matches must be positive to define recall");
  }
  SortByScoreDesc(&pairs);
  std::vector<PrPoint> curve;
  curve.reserve(pairs.size());
  uint64_t tp = 0;
  for (size_t n = 1; n <= pairs.size(); ++n) {
    if (pairs[n - 1].is_match) ++tp;
    PrPoint pt;
    pt.n = n;
    pt.precision = static_cast<double>(tp) / static_cast<double>(n);
    pt.recall = static_cast<double>(tp) / static_cast<double>(total_matches);
    curve.push_back(pt);
  }
  return curve;
}

std::vector<PrPoint> Downsample(const std::vector<PrPoint>& curve, size_t max_points) {
  if (curve.size() <= max_points || max_points < 2) return curve;
  std::vector<PrPoint> out;
  out.reserve(max_points);
  const double step = static_cast<double>(curve.size() - 1) / static_cast<double>(max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    out.push_back(curve[static_cast<size_t>(std::llround(i * step))]);
  }
  return out;
}

double PrecisionAtRecall(const std::vector<PrPoint>& curve, double recall) {
  // Best precision among points achieving at least the requested recall
  // (standard interpolated precision).
  double best = 0.0;
  for (const PrPoint& pt : curve) {
    if (pt.recall >= recall) best = std::max(best, pt.precision);
  }
  return best;
}

double BestF1(const std::vector<PrPoint>& curve) {
  double best = 0.0;
  for (const PrPoint& pt : curve) {
    const double denom = pt.precision + pt.recall;
    if (denom > 0.0) best = std::max(best, 2.0 * pt.precision * pt.recall / denom);
  }
  return best;
}

double AreaUnderPr(const std::vector<PrPoint>& curve) {
  double area = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& pt : curve) {
    if (pt.recall > prev_recall) {
      area += (pt.recall - prev_recall) * pt.precision;
      prev_recall = pt.recall;
    }
  }
  return area;
}

}  // namespace eval
}  // namespace crowder
