// Cluster-level ER evaluation: B-cubed precision/recall (Bagga & Baldwin),
// the standard record-weighted complement to pairwise metrics. Pairwise
// scores over-weight large clusters; B-cubed scores every record equally.
#ifndef CROWDER_EVAL_CLUSTER_METRICS_H_
#define CROWDER_EVAL_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace crowder {
namespace eval {

struct BCubedScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// \brief B-cubed over two labelings of the same records.
/// For each record r: precision_r = |pred(r) ∩ true(r)| / |pred(r)|,
/// recall_r = |pred(r) ∩ true(r)| / |true(r)|, where pred(r)/true(r) are the
/// predicted/true clusters containing r; scores average over records.
/// Requires equal, non-zero sizes.
Result<BCubedScore> BCubed(const std::vector<uint32_t>& predicted_cluster_of,
                           const std::vector<uint32_t>& true_entity_of);

}  // namespace eval
}  // namespace crowder

#endif  // CROWDER_EVAL_CLUSTER_METRICS_H_
