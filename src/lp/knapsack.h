// Unbounded integer knapsack, the pricing problem of cutting-stock column
// generation: find the feasible HIT pattern whose dual-weighted value is
// maximum. Items are sizes 1..max_size with weight == size.
#ifndef CROWDER_LP_KNAPSACK_H_
#define CROWDER_LP_KNAPSACK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace crowder {
namespace lp {

/// \brief Result of the pricing knapsack.
struct KnapsackSolution {
  /// counts[j] = how many items of size j+1 are used.
  std::vector<uint32_t> counts;
  double value = 0.0;
};

/// \brief Maximizes sum_j value[j] * counts[j] subject to
/// sum_j (j+1) * counts[j] <= capacity, counts integer >= 0.
///
/// `values[j]` is the profit of one item of size j+1 (typically an LP dual;
/// negative values are never taken). O(capacity * #sizes) DP.
Result<KnapsackSolution> SolveUnboundedKnapsack(uint32_t capacity,
                                                const std::vector<double>& values);

}  // namespace lp
}  // namespace crowder

#endif  // CROWDER_LP_KNAPSACK_H_
