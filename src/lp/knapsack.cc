#include "lp/knapsack.h"

#include <algorithm>

namespace crowder {
namespace lp {

Result<KnapsackSolution> SolveUnboundedKnapsack(uint32_t capacity,
                                                const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("knapsack needs at least one item size");
  }
  const size_t num_sizes = values.size();
  if (num_sizes > capacity) {
    return Status::InvalidArgument("largest item size " + std::to_string(num_sizes) +
                                   " exceeds capacity " + std::to_string(capacity));
  }

  // best[w] = max value using total weight exactly <= w; choice[w] = item
  // taken to reach best[w], or -1.
  std::vector<double> best(capacity + 1, 0.0);
  std::vector<int> choice(capacity + 1, -1);
  for (uint32_t w = 1; w <= capacity; ++w) {
    best[w] = best[w - 1];
    choice[w] = choice[w - 1] == -1 ? -1 : -2;  // -2: inherit from w-1 (no new item)
    for (size_t j = 0; j < num_sizes; ++j) {
      const uint32_t size = static_cast<uint32_t>(j + 1);
      if (size > w || values[j] <= 0.0) continue;
      const double cand = best[w - size] + values[j];
      if (cand > best[w] + 1e-12) {
        best[w] = cand;
        choice[w] = static_cast<int>(j);
      }
    }
  }

  KnapsackSolution sol;
  sol.counts.assign(num_sizes, 0);
  sol.value = best[capacity];
  uint32_t w = capacity;
  while (w > 0) {
    const int ch = choice[w];
    if (ch >= 0) {
      ++sol.counts[static_cast<size_t>(ch)];
      w -= static_cast<uint32_t>(ch + 1);
    } else {
      --w;  // inherited (or empty): move down
    }
  }
  return sol;
}

}  // namespace lp
}  // namespace crowder
