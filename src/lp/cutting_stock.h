// The cutting-stock / bin-packing solver behind CrowdER's bottom tier (§5.3):
// pack small connected components (items, size = #vertices) into the minimum
// number of cluster-based HITs (bins, capacity = cluster-size threshold k).
//
// Faithful to the paper's solution method: the LP relaxation of the pattern
// formulation is solved by column generation (Gilmore-Gomory [14]) with an
// unbounded-knapsack pricing problem; an integer optimum is then obtained by
// branch-and-bound ([25]), with first-fit-decreasing supplying the initial
// incumbent. In the (overwhelmingly common) case where FFD already meets the
// LP round-up bound, FFD is returned and optimality is proven without search.
#ifndef CROWDER_LP_CUTTING_STOCK_H_
#define CROWDER_LP_CUTTING_STOCK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace crowder {
namespace lp {

/// \brief A HIT pattern in the paper's notation p = [a_1, ..., a_k]:
/// counts[j] = number of items of size j+1 in one bin.
using Pattern = std::vector<uint32_t>;

/// \brief Total size consumed by a pattern.
uint32_t PatternWeight(const Pattern& pattern);

struct CuttingStockOptions {
  /// Column-generation round cap (each round solves one master LP).
  int max_colgen_rounds = 500;
  /// Run exact branch-and-bound when rounding leaves a gap. When false (or
  /// the node budget is exhausted) the best heuristic solution is returned
  /// with proven_optimal = false.
  bool exact = true;
  /// Branch-and-bound node budget.
  int max_bb_nodes = 500000;
  double eps = 1e-6;
};

struct CuttingStockResult {
  /// Distinct patterns used and how many bins take each pattern.
  std::vector<Pattern> patterns;
  std::vector<uint32_t> counts;
  uint32_t num_bins = 0;
  /// Column-generation LP optimum (a valid lower bound on num_bins).
  double lp_bound = 0.0;
  bool proven_optimal = false;
};

/// \brief Solves min-bins for `demands[j]` items of size j+1 and bin capacity
/// `capacity`. demands may be shorter than capacity; any demanded size larger
/// than the capacity is an InvalidArgument.
Result<CuttingStockResult> SolveCuttingStock(uint32_t capacity,
                                             const std::vector<uint32_t>& demands,
                                             const CuttingStockOptions& options = {});

/// \brief First-fit-decreasing bin packing over explicit items.
/// Returns bins as lists of item indices into `item_sizes`. Items larger than
/// the capacity are an InvalidArgument.
Result<std::vector<std::vector<uint32_t>>> FirstFitDecreasing(
    uint32_t capacity, const std::vector<uint32_t>& item_sizes);

}  // namespace lp
}  // namespace crowder

#endif  // CROWDER_LP_CUTTING_STOCK_H_
