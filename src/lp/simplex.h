// A dense two-phase revised simplex solver for small linear programs.
//
// CrowdER's bottom tier (§5.3) formulates SCC packing as a cutting-stock
// integer program solved by column generation and branch-and-bound
// (refs [14, 25]). Column generation needs an LP solver that exposes dual
// values; the restricted master problems here have at most k rows (k = the
// cluster-size threshold, ~5-20), so a dense implementation is the right
// tool: simple, exact to machine precision, no external dependency.
#ifndef CROWDER_LP_SIMPLEX_H_
#define CROWDER_LP_SIMPLEX_H_

#include <vector>

#include "common/result.h"

namespace crowder {
namespace lp {

enum class Sense { kLe, kGe, kEq };

/// \brief One linear constraint: coeffs · x  (sense)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// \brief minimize (or maximize) objective · x subject to constraints, x >= 0.
struct LpProblem {
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
  bool maximize = false;
};

/// \brief Optimal solution of an LpProblem.
///
/// `duals[i]` is the multiplier of constraint i in the *equality form the
/// solver actually pivots on*, i.e. after any row with negative rhs has been
/// negated. For a minimization problem whose rows are `>=` with rhs >= 0
/// (the cutting-stock master), duals[i] is the usual non-negative covering
/// dual. For a maximization input, duals refer to the internal minimization
/// of -objective.
struct LpSolution {
  std::vector<double> x;  ///< structural variables only
  double objective = 0.0; ///< in the caller's orientation (max or min)
  std::vector<double> duals;
};

struct SimplexOptions {
  double eps = 1e-9;
  /// Hard iteration cap (per phase); exceeded => Internal error. The solver
  /// switches from Dantzig to Bland's anti-cycling rule well before this.
  int max_iterations = 50000;
};

/// \brief Solves the LP. Errors: Infeasible, Unbounded, InvalidArgument
/// (ragged coefficient rows), Internal (iteration cap).
Result<LpSolution> SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace lp
}  // namespace crowder

#endif  // CROWDER_LP_SIMPLEX_H_
