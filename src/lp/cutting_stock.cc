#include "lp/cutting_stock.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "lp/knapsack.h"
#include "lp/simplex.h"

namespace crowder {
namespace lp {

uint32_t PatternWeight(const Pattern& pattern) {
  uint32_t w = 0;
  for (size_t j = 0; j < pattern.size(); ++j) {
    w += pattern[j] * static_cast<uint32_t>(j + 1);
  }
  return w;
}

Result<std::vector<std::vector<uint32_t>>> FirstFitDecreasing(
    uint32_t capacity, const std::vector<uint32_t>& item_sizes) {
  for (uint32_t s : item_sizes) {
    if (s > capacity) {
      return Status::InvalidArgument("item of size " + std::to_string(s) +
                                     " exceeds capacity " + std::to_string(capacity));
    }
    if (s == 0) return Status::InvalidArgument("zero-size item");
  }
  std::vector<uint32_t> order(item_sizes.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return item_sizes[a] > item_sizes[b]; });

  std::vector<std::vector<uint32_t>> bins;
  std::vector<uint32_t> slack;
  for (uint32_t idx : order) {
    const uint32_t s = item_sizes[idx];
    bool placed = false;
    for (size_t b = 0; b < bins.size(); ++b) {
      if (slack[b] >= s) {
        bins[b].push_back(idx);
        slack[b] -= s;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bins.push_back({idx});
      slack.push_back(capacity - s);
    }
  }
  return bins;
}

namespace {

struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Solves the LP relaxation by column generation. `active` maps master rows
// to size indices (0-based: size = index+1). Returns the LP optimum and the
// generated pattern pool (over all sizes, length = capacity entries trimmed
// to demands.size()).
Result<double> SolveLpByColumnGeneration(uint32_t capacity,
                                         const std::vector<uint32_t>& demands,
                                         const std::vector<size_t>& active,
                                         const CuttingStockOptions& options,
                                         std::vector<Pattern>* pool) {
  // Seed columns: for each active size, a bin packed with copies of it.
  for (size_t j : active) {
    Pattern p(demands.size(), 0);
    p[j] = capacity / static_cast<uint32_t>(j + 1);
    pool->push_back(std::move(p));
  }

  double lp_value = 0.0;
  for (int round = 0; round < options.max_colgen_rounds; ++round) {
    LpProblem master;
    master.objective.assign(pool->size(), 1.0);
    master.constraints.reserve(active.size());
    for (size_t j : active) {
      LpConstraint con;
      con.sense = Sense::kGe;
      con.rhs = static_cast<double>(demands[j]);
      con.coeffs.resize(pool->size());
      for (size_t i = 0; i < pool->size(); ++i) {
        con.coeffs[i] = static_cast<double>((*pool)[i][j]);
      }
      master.constraints.push_back(std::move(con));
    }
    CROWDER_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(master));
    lp_value = sol.objective;

    // Pricing: most violated pattern under the duals.
    std::vector<double> values(capacity, 0.0);
    for (size_t row = 0; row < active.size(); ++row) {
      values[active[row]] = sol.duals[row];
    }
    CROWDER_ASSIGN_OR_RETURN(KnapsackSolution priced, SolveUnboundedKnapsack(capacity, values));
    if (priced.value <= 1.0 + options.eps) {
      return lp_value;  // no improving column: LP optimal
    }
    Pattern p(demands.size(), 0);
    for (size_t j = 0; j < priced.counts.size() && j < p.size(); ++j) p[j] = priced.counts[j];
    pool->push_back(std::move(p));
  }
  CROWDER_LOG(Warning) << "column generation hit round cap; bound may be loose";
  return lp_value;
}

// Enumerates patterns over `remaining` demand that are maximal: no further
// item (with remaining demand) fits the residual capacity.
void EnumerateMaximalPatterns(uint32_t capacity, const std::vector<uint32_t>& remaining,
                              size_t size_index, Pattern* current,
                              std::vector<Pattern>* out) {
  if (size_index == static_cast<size_t>(-1) || size_index >= remaining.size()) {
    // All sizes decided; maximality: no size with remaining demand fits.
    const uint32_t used = PatternWeight(*current);
    for (size_t j = 0; j < remaining.size(); ++j) {
      const uint32_t item = static_cast<uint32_t>(j + 1);
      if (remaining[j] > (*current)[j] && used + item <= capacity) return;  // extendable
    }
    if (used > 0) out->push_back(*current);
    return;
  }
  const uint32_t item = static_cast<uint32_t>(size_index + 1);
  const uint32_t used = PatternWeight(*current);
  const uint32_t fit = (capacity - used) / item;
  const uint32_t max_count = std::min<uint32_t>(remaining[size_index], fit);
  // Descend sizes from large to small; try larger counts first (greedy-ish
  // order helps find good incumbents early).
  for (uint32_t c = max_count;; --c) {
    (*current)[size_index] = c;
    EnumerateMaximalPatterns(capacity, remaining,
                             size_index == 0 ? static_cast<size_t>(-1) : size_index - 1, current,
                             out);
    if (c == 0) break;
  }
  (*current)[size_index] = 0;
}

uint32_t SimpleLowerBound(uint32_t capacity, const std::vector<uint32_t>& remaining) {
  uint64_t total = 0;
  for (size_t j = 0; j < remaining.size(); ++j) {
    total += static_cast<uint64_t>(remaining[j]) * (j + 1);
  }
  return static_cast<uint32_t>((total + capacity - 1) / capacity);
}

// Depth-first branch-and-bound: fill one (maximal) bin at a time.
class BinPackSearch {
 public:
  BinPackSearch(uint32_t capacity, int node_budget, double eps)
      : capacity_(capacity), node_budget_(node_budget), eps_(eps) {}

  // Returns the optimal bin count for `demand`, or the incumbent if the node
  // budget ran out (sets exhausted()). Fills `solution` with one pattern per
  // bin of the best packing found.
  uint32_t Solve(const std::vector<uint32_t>& demand, uint32_t upper_bound,
                 std::vector<Pattern>* solution) {
    best_ = upper_bound;
    best_chain_.clear();
    chain_.clear();
    Dfs(demand, 0);
    *solution = best_chain_;
    return best_;
  }

  bool exhausted() const { return nodes_ >= node_budget_; }

 private:
  void Dfs(const std::vector<uint32_t>& demand, uint32_t used_bins) {
    if (nodes_ >= node_budget_) return;
    ++nodes_;

    const uint32_t lb = SimpleLowerBound(capacity_, demand);
    if (lb == 0) {  // everything packed
      if (used_bins < best_) {
        best_ = used_bins;
        best_chain_ = chain_;
      }
      return;
    }
    if (used_bins + lb >= best_) return;  // cannot improve

    std::vector<Pattern> moves;
    Pattern scratch(demand.size(), 0);
    EnumerateMaximalPatterns(capacity_, demand, demand.size() - 1, &scratch, &moves);
    // Prefer fuller bins first: they reach the lower bound fastest.
    std::sort(moves.begin(), moves.end(), [](const Pattern& a, const Pattern& b) {
      return PatternWeight(a) > PatternWeight(b);
    });
    for (const Pattern& mv : moves) {
      std::vector<uint32_t> next = demand;
      for (size_t j = 0; j < next.size(); ++j) next[j] -= std::min(next[j], mv[j]);
      chain_.push_back(mv);
      Dfs(next, used_bins + 1);
      chain_.pop_back();
      if (used_bins + lb >= best_) return;  // incumbent now matches bound
      if (nodes_ >= node_budget_) return;
    }
  }

  uint32_t capacity_;
  int node_budget_;
  double eps_;
  int nodes_ = 0;
  uint32_t best_ = UINT32_MAX;
  std::vector<Pattern> chain_;
  std::vector<Pattern> best_chain_;
};

// Aggregates a list of per-bin patterns into (distinct pattern, count) pairs.
void AggregatePatterns(const std::vector<Pattern>& bins, CuttingStockResult* result) {
  std::unordered_map<std::vector<uint32_t>, uint32_t, VectorHash> tally;
  for (const Pattern& p : bins) ++tally[p];
  for (auto& [pattern, count] : tally) {
    result->patterns.push_back(pattern);
    result->counts.push_back(count);
  }
}

}  // namespace

Result<CuttingStockResult> SolveCuttingStock(uint32_t capacity,
                                             const std::vector<uint32_t>& demands,
                                             const CuttingStockOptions& options) {
  if (capacity == 0) return Status::InvalidArgument("capacity must be positive");
  for (size_t j = 0; j < demands.size(); ++j) {
    if (demands[j] > 0 && j + 1 > capacity) {
      return Status::InvalidArgument("demanded size " + std::to_string(j + 1) +
                                     " exceeds capacity " + std::to_string(capacity));
    }
  }

  CuttingStockResult result;
  std::vector<size_t> active;
  for (size_t j = 0; j < demands.size(); ++j) {
    if (demands[j] > 0) active.push_back(j);
  }
  if (active.empty()) {
    result.proven_optimal = true;
    return result;
  }

  // 1. LP lower bound via column generation.
  std::vector<Pattern> pool;
  CROWDER_ASSIGN_OR_RETURN(result.lp_bound, SolveLpByColumnGeneration(capacity, demands, active,
                                                                      options, &pool));
  const uint32_t round_up =
      static_cast<uint32_t>(std::ceil(result.lp_bound - options.eps));

  // 2. Incumbent via first-fit-decreasing.
  std::vector<uint32_t> items;
  for (size_t j : active) {
    items.insert(items.end(), demands[j], static_cast<uint32_t>(j + 1));
  }
  CROWDER_ASSIGN_OR_RETURN(auto ffd_bins, FirstFitDecreasing(capacity, items));
  std::vector<Pattern> ffd_patterns;
  ffd_patterns.reserve(ffd_bins.size());
  for (const auto& bin : ffd_bins) {
    Pattern p(demands.size(), 0);
    for (uint32_t idx : bin) ++p[items[idx] - 1];
    ffd_patterns.push_back(std::move(p));
  }

  if (static_cast<uint32_t>(ffd_bins.size()) <= round_up || !options.exact) {
    result.num_bins = static_cast<uint32_t>(ffd_bins.size());
    result.proven_optimal = static_cast<uint32_t>(ffd_bins.size()) <= round_up;
    AggregatePatterns(ffd_patterns, &result);
    return result;
  }

  // 3. Branch-and-bound closes the gap.
  BinPackSearch search(capacity, options.max_bb_nodes, options.eps);
  std::vector<Pattern> bb_bins;
  std::vector<uint32_t> demand_vec = demands;
  const uint32_t bb_best =
      search.Solve(demand_vec, static_cast<uint32_t>(ffd_bins.size()), &bb_bins);

  if (bb_bins.empty() || bb_best >= ffd_bins.size()) {
    result.num_bins = static_cast<uint32_t>(ffd_bins.size());
    result.proven_optimal = !search.exhausted();
    AggregatePatterns(ffd_patterns, &result);
  } else {
    result.num_bins = bb_best;
    result.proven_optimal = !search.exhausted() || bb_best <= round_up;
    AggregatePatterns(bb_bins, &result);
  }
  return result;
}

}  // namespace lp
}  // namespace crowder
