#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace crowder {
namespace lp {

namespace {

// Dense column-major working form: min c'x s.t. Ax = b (b >= 0), x >= 0,
// with artificial variables appended for the phase-1 basis.
class RevisedSimplex {
 public:
  RevisedSimplex(size_t m, size_t n, std::vector<double> a_colmajor, std::vector<double> b,
                 std::vector<double> c, double eps, int max_iterations)
      : m_(m),
        n_(n),
        a_(std::move(a_colmajor)),
        b_(std::move(b)),
        c_(std::move(c)),
        eps_(eps),
        max_iterations_(max_iterations) {}

  // Runs phase 1 (artificials) then phase 2. Returns status; on OK the
  // accessors below are valid.
  Status Solve() {
    // Phase 1: append m artificial columns forming an identity basis.
    const size_t total = n_ + m_;
    a_.resize(total * m_, 0.0);
    for (size_t i = 0; i < m_; ++i) a_[(n_ + i) * m_ + i] = 1.0;

    std::vector<double> phase1_cost(total, 0.0);
    for (size_t j = n_; j < total; ++j) phase1_cost[j] = 1.0;

    basis_.resize(m_);
    for (size_t i = 0; i < m_; ++i) basis_[i] = n_ + i;
    binv_.assign(m_ * m_, 0.0);
    for (size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
    RefreshXb();

    CROWDER_RETURN_NOT_OK(RunPhase(phase1_cost, total, /*blocked_from=*/total));
    if (Objective(phase1_cost) > 1e-7) {
      return Status::Infeasible("phase-1 optimum positive: no feasible point");
    }
    // Drive any lingering (degenerate, value ~0) artificials out of the basis
    // when a structural pivot exists; rows with no structural pivot are
    // redundant and keep a zero artificial harmlessly.
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) continue;
      for (size_t j = 0; j < n_; ++j) {
        if (IsBasic(j)) continue;
        const double piv = RowDotColumn(i, j);
        if (std::fabs(piv) > 1e-7) {
          Pivot(i, j);
          break;
        }
      }
    }

    // Phase 2: original costs; artificials may never re-enter.
    std::vector<double> phase2_cost = c_;
    phase2_cost.resize(total, 0.0);
    CROWDER_RETURN_NOT_OK(RunPhase(phase2_cost, total, /*blocked_from=*/n_));
    final_cost_ = std::move(phase2_cost);
    return Status::OK();
  }

  std::vector<double> StructuralSolution() const {
    std::vector<double> x(n_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = xb_[i];
    }
    return x;
  }

  double ObjectiveValue() const { return Objective(final_cost_); }

  std::vector<double> Duals() const {
    // y' = c_B' B^{-1}
    std::vector<double> y(m_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      const double cb = final_cost_[basis_[i]];
      if (cb == 0.0) continue;
      for (size_t r = 0; r < m_; ++r) y[r] += cb * binv_[i * m_ + r];
    }
    return y;
  }

 private:
  bool IsBasic(size_t j) const {
    return std::find(basis_.begin(), basis_.end(), j) != basis_.end();
  }

  double Objective(const std::vector<double>& cost) const {
    double v = 0.0;
    for (size_t i = 0; i < m_; ++i) v += cost[basis_[i]] * xb_[i];
    return v;
  }

  // (B^{-1} A_j)_i
  double RowDotColumn(size_t i, size_t j) const {
    const double* col = &a_[j * m_];
    double v = 0.0;
    for (size_t r = 0; r < m_; ++r) v += binv_[i * m_ + r] * col[r];
    return v;
  }

  void RefreshXb() {
    xb_.assign(m_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      for (size_t r = 0; r < m_; ++r) xb_[i] += binv_[i * m_ + r] * b_[r];
    }
  }

  // Replaces basis row `row` with column `enter`, updating B^{-1} and xb.
  void Pivot(size_t row, size_t enter) {
    std::vector<double> d(m_);
    for (size_t i = 0; i < m_; ++i) d[i] = RowDotColumn(i, enter);
    const double piv = d[row];
    CROWDER_DCHECK(std::fabs(piv) > 0);
    for (size_t r = 0; r < m_; ++r) binv_[row * m_ + r] /= piv;
    for (size_t i = 0; i < m_; ++i) {
      if (i == row || std::fabs(d[i]) < 1e-14) continue;
      for (size_t r = 0; r < m_; ++r) binv_[i * m_ + r] -= d[i] * binv_[row * m_ + r];
    }
    basis_[row] = enter;
    RefreshXb();
  }

  Status RunPhase(const std::vector<double>& cost, size_t total, size_t blocked_from) {
    const int bland_after = static_cast<int>(10 * (m_ + total));
    for (int iter = 0; iter < max_iterations_; ++iter) {
      // y = c_B B^{-1}
      std::vector<double> y(m_, 0.0);
      for (size_t i = 0; i < m_; ++i) {
        const double cb = cost[basis_[i]];
        if (cb == 0.0) continue;
        for (size_t r = 0; r < m_; ++r) y[r] += cb * binv_[i * m_ + r];
      }
      // Entering variable: most negative reduced cost (Dantzig), or Bland
      // (first negative) once past the anti-cycling threshold.
      const bool bland = iter >= bland_after;
      size_t enter = total;
      double best_rc = -eps_;
      for (size_t j = 0; j < total; ++j) {
        if (j >= blocked_from || IsBasic(j)) continue;
        const double* col = &a_[j * m_];
        double rc = cost[j];
        for (size_t r = 0; r < m_; ++r) rc -= y[r] * col[r];
        if (rc < best_rc) {
          enter = j;
          if (bland) break;
          best_rc = rc;
        }
      }
      if (enter == total) return Status::OK();  // optimal

      // Ratio test.
      size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m_; ++i) {
        const double di = RowDotColumn(i, enter);
        if (di > eps_) {
          const double ratio = xb_[i] / di;
          if (ratio < best_ratio - eps_ ||
              (ratio < best_ratio + eps_ && (leave == m_ || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return Status::Unbounded("objective unbounded below");
      Pivot(leave, enter);
    }
    return Status::Internal("simplex iteration limit exceeded");
  }

  size_t m_;
  size_t n_;
  std::vector<double> a_;  // column-major, m_ rows
  std::vector<double> b_;
  std::vector<double> c_;
  double eps_;
  int max_iterations_;

  std::vector<size_t> basis_;
  std::vector<double> binv_;  // row-major m x m
  std::vector<double> xb_;
  std::vector<double> final_cost_;
};

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  const size_t n_struct = problem.objective.size();
  const size_t m = problem.constraints.size();
  for (const auto& con : problem.constraints) {
    if (con.coeffs.size() != n_struct) {
      return Status::InvalidArgument("constraint has " + std::to_string(con.coeffs.size()) +
                                     " coefficients, expected " + std::to_string(n_struct));
    }
  }

  // Normalize rows to rhs >= 0 and count slack/surplus columns.
  size_t n_extra = 0;
  for (const auto& con : problem.constraints) {
    if (con.sense != Sense::kEq) ++n_extra;
  }
  const size_t n = n_struct + n_extra;

  std::vector<double> a(n * m, 0.0);  // column-major
  std::vector<double> b(m, 0.0);
  std::vector<double> c(n, 0.0);
  for (size_t j = 0; j < n_struct; ++j) {
    c[j] = problem.maximize ? -problem.objective[j] : problem.objective[j];
  }

  size_t extra = 0;
  for (size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    const bool flip = con.rhs < 0.0;
    const double sign = flip ? -1.0 : 1.0;
    b[i] = sign * con.rhs;
    for (size_t j = 0; j < n_struct; ++j) a[j * m + i] = sign * con.coeffs[j];
    if (con.sense != Sense::kEq) {
      // kLe gains +slack, kGe gains -surplus; a flipped row swaps roles.
      double coef = (con.sense == Sense::kLe) ? 1.0 : -1.0;
      if (flip) coef = -coef;
      a[(n_struct + extra) * m + i] = coef;
      ++extra;
    }
  }

  RevisedSimplex solver(m, n, std::move(a), std::move(b), std::move(c), options.eps,
                        options.max_iterations);
  CROWDER_RETURN_NOT_OK(solver.Solve());

  LpSolution sol;
  std::vector<double> full = solver.StructuralSolution();
  sol.x.assign(full.begin(), full.begin() + static_cast<long>(n_struct));
  const double internal_obj = solver.ObjectiveValue();
  sol.objective = problem.maximize ? -internal_obj : internal_obj;
  sol.duals = solver.Duals();
  return sol;
}

}  // namespace lp
}  // namespace crowder
