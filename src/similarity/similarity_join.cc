#include "similarity/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "similarity/join_internal.h"

namespace crowder {
namespace similarity {

void SortPairs(std::vector<ScoredPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(), [](const ScoredPair& x, const ScoredPair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
}

Status ValidateJoin(const JoinInput& input, const JoinOptions& options) {
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    return Status::InvalidArgument("join threshold must be in [0,1], got " +
                                   std::to_string(options.threshold));
  }
  if (!input.sources.empty() && input.sources.size() != input.sets.size()) {
    return Status::InvalidArgument("sources size (" + std::to_string(input.sources.size()) +
                                   ") must match sets size (" +
                                   std::to_string(input.sets.size()) + ")");
  }
  for (const auto& set : input.sets) {
    if (!std::is_sorted(set.begin(), set.end())) {
      return Status::InvalidArgument("token sets must be sorted (use MakeTokenSet)");
    }
    if (std::adjacent_find(set.begin(), set.end()) != set.end()) {
      return Status::InvalidArgument("token sets must be deduplicated (use MakeTokenSet)");
    }
  }
  return Status::OK();
}

using internal::Admissible;

Result<std::vector<ScoredPair>> NaiveJoin(const JoinInput& input, const JoinOptions& options,
                                          JoinStats* stats) {
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, options));
  std::vector<ScoredPair> out;
  const uint32_t n = static_cast<uint32_t>(input.sets.size());
  uint64_t verifications = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (!Admissible(input, i, j)) continue;
      // Two empty sets score 1.0 under every measure, but an empty record
      // carries no matching evidence: at a positive threshold such pairs are
      // not emitted (AllPairsJoin and blocking agree on this contract).
      if (options.threshold > 0.0 && input.sets[i].empty() && input.sets[j].empty()) continue;
      ++verifications;
      const double sim = SetSimilarity(options.measure, input.sets[i], input.sets[j]);
      if (sim >= options.threshold) out.push_back({i, j, sim});
    }
  }
  if (stats != nullptr) stats->pair_verifications += verifications;
  SortPairs(&out);
  return out;
}

namespace internal {

PrefixBounds ComputePrefixBounds(SetMeasure measure, double threshold, size_t size) {
  PrefixBounds bounds;
  if (size == 0) return bounds;  // empty records never pair at threshold > 0
  // Overlap lower bound against the *worst-case* admissible partner: any y
  // with sim(x,y) >= t has |y| >= MinCompatibleSize, and the required overlap
  // is monotone in |y|, so evaluating it at the minimum partner size is a
  // valid bound for all partners. A pair meeting the bound must share a token
  // within the first size - alpha + 1 tokens of each side (prefix-filtering
  // lemma).
  bounds.min_partner = std::max<size_t>(1, MinCompatibleSize(measure, size, threshold));
  const size_t alpha =
      std::max<size_t>(1, MinRequiredOverlap(measure, size, bounds.min_partner, threshold));
  bounds.prefix_len = std::min(size, size >= alpha ? size - alpha + 1 : size);
  return bounds;
}

JoinPlan BuildJoinPlan(const JoinInput& input, const JoinOptions& options) {
  const double t = options.threshold;
  const uint32_t n = static_cast<uint32_t>(input.sets.size());
  JoinPlan plan;

  // 1. Compute per-token frequency within this input, then re-express each
  //    set with tokens ordered rarest-first (ties by id). Rare-first prefixes
  //    produce the fewest candidates.
  text::TokenId max_token = 0;
  for (const auto& set : input.sets) {
    for (text::TokenId tok : set) max_token = std::max(max_token, tok);
  }
  std::vector<uint32_t> freq(static_cast<size_t>(max_token) + 1, 0);
  for (const auto& set : input.sets) {
    for (text::TokenId tok : set) ++freq[tok];
  }
  // rank[token] = position in global rare-first order.
  std::vector<text::TokenId> order(freq.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](text::TokenId x, text::TokenId y) {
    return freq[x] != freq[y] ? freq[x] < freq[y] : x < y;
  });
  std::vector<uint32_t> rank(freq.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  plan.num_ranks = order.size();

  // One flat arena for every record's ranked list: sizes are known up front,
  // so prefix-sum the offsets, fill each span, and sort it in place.
  plan.token_offset.resize(n + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    plan.token_offset[i + 1] = plan.token_offset[i] + input.sets[i].size();
  }
  plan.arena.resize(plan.token_offset[n]);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t* span = plan.arena.data() + plan.token_offset[i];
    size_t k = 0;
    for (text::TokenId tok : input.sets[i]) span[k++] = rank[tok];
    std::sort(span, span + k);
  }

  // 2. Process records in non-decreasing size order so that indexed partners
  //    are never larger than the probing record.
  plan.by_size.resize(n);
  std::iota(plan.by_size.begin(), plan.by_size.end(), 0);
  std::stable_sort(plan.by_size.begin(), plan.by_size.end(), [&](uint32_t x, uint32_t y) {
    return plan.ranked_size(x) < plan.ranked_size(y);
  });

  // 3. Per-record bounds, shared with the incremental index (see
  //    ComputePrefixBounds for the lemma).
  plan.prefix_len.resize(n, 0);
  plan.min_partner.resize(n, 1);
  for (uint32_t i = 0; i < n; ++i) {
    const PrefixBounds bounds = ComputePrefixBounds(options.measure, t, plan.ranked_size(i));
    plan.min_partner[i] = bounds.min_partner;
    plan.prefix_len[i] = bounds.prefix_len;
  }
  return plan;
}

}  // namespace internal

Result<std::vector<ScoredPair>> AllPairsJoin(const JoinInput& input, const JoinOptions& options,
                                             JoinStats* stats) {
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, options));
  const double t = options.threshold;
  const uint32_t n = static_cast<uint32_t>(input.sets.size());

  // A zero threshold admits every pair; prefix filtering degenerates, so
  // fall through to the exhaustive join.
  if (t <= 0.0) return NaiveJoin(input, options, stats);

  const internal::JoinPlan plan = internal::BuildJoinPlan(input, options);

  // Inverted index: token rank -> records that indexed it so far. Built
  // incrementally — a record indexes its prefix right after probing, so the
  // index only ever contains records earlier in by_size order.
  std::vector<std::vector<uint32_t>> postings(plan.num_ranks);

  std::vector<ScoredPair> out;
  std::vector<uint32_t> candidates;
  std::vector<char> seen(n, 0);
  uint64_t verifications = 0;

  for (uint32_t rec : plan.by_size) {
    const TokenSpan tokens = plan.ranked(rec);
    if (tokens.empty()) continue;
    const size_t prefix_len = plan.prefix_len[rec];
    const size_t min_partner = plan.min_partner[rec];

    candidates.clear();
    for (size_t p = 0; p < prefix_len; ++p) {
      for (uint32_t other : postings[tokens[p]]) {
        if (seen[other]) continue;
        seen[other] = 1;
        candidates.push_back(other);
      }
    }
    for (uint32_t other : candidates) {
      seen[other] = 0;
      if (plan.ranked_size(other) < min_partner) continue;
      if (!Admissible(input, rec, other)) continue;
      ++verifications;
      double sim;
      // Verification runs over the arena's ranked spans, not the original
      // sets — same overlap, same sizes, bitwise the same score (see
      // internal::VerifyPair), but cache-dense and free to exit early.
      if (internal::VerifyPair(options.measure, t, tokens, plan.ranked(other), &sim)) {
        const uint32_t a = std::min(rec, other);
        const uint32_t b = std::max(rec, other);
        out.push_back({a, b, sim});
      }
    }
    // Index the same prefix we probe with. (This is at least as long as the
    // tight "mid-prefix", so no pair can be missed.)
    for (size_t p = 0; p < prefix_len; ++p) {
      postings[tokens[p]].push_back(rec);
    }
  }
  if (stats != nullptr) stats->pair_verifications += verifications;
  SortPairs(&out);
  return out;
}

}  // namespace similarity
}  // namespace crowder
