// Token blocking: a coarse candidate generator (CrowdER footnote 1 cites
// blocking [7]). Two records become a candidate pair if they share at least
// one blocking key (a token, or a character q-gram of a token). Candidates
// still need verification; blocking only bounds which pairs are examined.
#ifndef CROWDER_SIMILARITY_BLOCKING_H_
#define CROWDER_SIMILARITY_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "similarity/similarity_join.h"

namespace crowder {
namespace similarity {

/// \brief Blocking configuration.
struct BlockingOptions {
  /// Blocks larger than this are discarded as non-discriminative (a common
  /// guard against stop-word-like tokens exploding the candidate set).
  /// 0 disables the guard.
  size_t max_block_size = 200;
};

/// \brief A pair of record ids (a < b) produced by blocking, pre-verification.
struct CandidatePair {
  uint32_t a = 0;
  uint32_t b = 0;
};

/// \brief Generates candidate pairs that co-occur in at least one token block.
/// Respects JoinInput::sources (cross-source joins never pair same-source
/// records). Output is deduplicated and sorted by (a, b).
Result<std::vector<CandidatePair>> TokenBlocking(const JoinInput& input,
                                                 const BlockingOptions& options);

/// \brief Verifies blocked candidates against a similarity threshold,
/// producing the same ScoredPair format as the joins. Combining
/// TokenBlocking + VerifyCandidates is the "blocking" join strategy in the
/// ABL-3 ablation.
Result<std::vector<ScoredPair>> VerifyCandidates(const JoinInput& input,
                                                 const std::vector<CandidatePair>& candidates,
                                                 const JoinOptions& options);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_BLOCKING_H_
