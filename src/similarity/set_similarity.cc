#include "similarity/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace crowder {
namespace similarity {

TokenSet MakeTokenSet(std::vector<text::TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

size_t OverlapSizeLinear(const TokenSet& a, const TokenSet& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

namespace {

// First index in [begin, v.size()) with v[idx] >= target: exponential probe
// from `begin` to bracket the target, then binary search inside the bracket.
// O(log distance) rather than O(log |v|), so a run of nearby probes stays
// cheap.
size_t GallopLowerBound(const TokenSet& v, size_t begin, text::TokenId target) {
  size_t step = 1;
  size_t hi = begin;
  while (hi < v.size() && v[hi] < target) {
    begin = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(begin),
                       v.begin() + static_cast<ptrdiff_t>(hi), target) -
      v.begin());
}

}  // namespace

size_t OverlapSizeGalloping(const TokenSet& a, const TokenSet& b) {
  // Walk the smaller set, galloping through the larger one.
  const TokenSet& small = a.size() <= b.size() ? a : b;
  const TokenSet& large = a.size() <= b.size() ? b : a;
  size_t count = 0;
  size_t pos = 0;
  for (text::TokenId tok : small) {
    pos = GallopLowerBound(large, pos, tok);
    if (pos == large.size()) break;
    if (large[pos] == tok) {
      ++count;
      ++pos;
    }
  }
  return count;
}

size_t OverlapSize(const TokenSet& a, const TokenSet& b) {
  // Crossover measured by bench_micro (BM_Overlap*): galloping wins once one
  // set is ~16x the other; below that the linear merge's branch-predictable
  // scan is faster.
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small > 0 && large / small >= 16) return OverlapSizeGalloping(a, b);
  return OverlapSizeLinear(a, b);
}

double Jaccard(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = OverlapSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double Dice(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = OverlapSize(a, b);
  const size_t denom = a.size() + b.size();
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(inter) / static_cast<double>(denom);
}

double CosineSet(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = OverlapSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

double OverlapCoefficient(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = OverlapSize(a, b);
  return static_cast<double>(inter) / static_cast<double>(std::min(a.size(), b.size()));
}

double SetSimilarity(SetMeasure measure, const TokenSet& a, const TokenSet& b) {
  switch (measure) {
    case SetMeasure::kJaccard:
      return Jaccard(a, b);
    case SetMeasure::kDice:
      return Dice(a, b);
    case SetMeasure::kCosine:
      return CosineSet(a, b);
    case SetMeasure::kOverlapCoefficient:
      return OverlapCoefficient(a, b);
  }
  CROWDER_CHECK(false) << "unknown measure";
  return 0.0;
}

size_t MinCompatibleSize(SetMeasure measure, size_t size, double threshold) {
  if (threshold <= 0.0) return 0;
  const double s = static_cast<double>(size);
  double lower = 0.0;
  switch (measure) {
    case SetMeasure::kJaccard:
      // |b| >= t * |a|
      lower = threshold * s;
      break;
    case SetMeasure::kDice:
      // 2|a∩b| >= t(|a|+|b|) and |a∩b| <= |b|  =>  |b| >= t|a| / (2-t)
      lower = threshold * s / (2.0 - threshold);
      break;
    case SetMeasure::kCosine:
      // |a∩b| <= |b| and |a∩b| >= t sqrt(|a||b|) => |b| >= t^2 |a|
      lower = threshold * threshold * s;
      break;
    case SetMeasure::kOverlapCoefficient:
      // overlap/min >= t always satisfiable for any |b| >= 1.
      lower = 1.0;
      break;
  }
  return static_cast<size_t>(std::ceil(lower - 1e-9));
}

size_t MinRequiredOverlap(SetMeasure measure, size_t sa, size_t sb, double threshold) {
  const double a = static_cast<double>(sa);
  const double b = static_cast<double>(sb);
  double need = 0.0;
  switch (measure) {
    case SetMeasure::kJaccard:
      // o / (a + b - o) >= t  =>  o >= t(a+b) / (1+t)
      need = threshold * (a + b) / (1.0 + threshold);
      break;
    case SetMeasure::kDice:
      need = threshold * (a + b) / 2.0;
      break;
    case SetMeasure::kCosine:
      need = threshold * std::sqrt(a * b);
      break;
    case SetMeasure::kOverlapCoefficient:
      need = threshold * std::min(a, b);
      break;
  }
  return static_cast<size_t>(std::ceil(need - 1e-9));
}

}  // namespace similarity
}  // namespace crowder
