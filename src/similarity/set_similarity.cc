#include "similarity/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "similarity/overlap_simd.h"

namespace crowder {
namespace similarity {

TokenSet MakeTokenSet(std::vector<text::TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

size_t OverlapSizeLinear(TokenSpan a, TokenSpan b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

namespace {

// First index in [begin, v.size()) with v[idx] >= target: exponential probe
// from `begin` to bracket the target, then binary search inside the bracket.
// O(log distance) rather than O(log |v|), so a run of nearby probes stays
// cheap.
size_t GallopLowerBound(TokenSpan v, size_t begin, text::TokenId target) {
  size_t step = 1;
  size_t hi = begin;
  while (hi < v.size() && v[hi] < target) {
    begin = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, v.size());
  return static_cast<size_t>(std::lower_bound(v.begin() + begin, v.begin() + hi, target) -
                             v.begin());
}

// Size ratio at which OverlapSize abandons the SIMD block merge for the
// galloping probe. Crossover measured by bench_machine's ratio sweep
// (BENCH_machine.json "galloping_crossover", |small| = 32 against the AVX2
// merge): simd wins decisively through 8x, the two are within noise at 16x,
// and galloping wins from 24x up (2x faster by 32x, 7x by 256x). 16 is the
// first measured ratio where galloping is ahead, and it matches the
// seed's scalar-merge crossover — the AVX2 merge gains on the merge side
// roughly what cache-friendlier probes gain on the gallop side.
constexpr size_t kGallopDispatchRatio = 16;

}  // namespace

size_t OverlapSizeGalloping(TokenSpan a, TokenSpan b) {
  // Walk the smaller set, galloping through the larger one.
  const TokenSpan small = a.size() <= b.size() ? a : b;
  const TokenSpan large = a.size() <= b.size() ? b : a;
  size_t count = 0;
  size_t pos = 0;
  for (text::TokenId tok : small) {
    pos = GallopLowerBound(large, pos, tok);
    if (pos == large.size()) break;
    if (large[pos] == tok) {
      ++count;
      ++pos;
    }
  }
  return count;
}

size_t OverlapSize(TokenSpan a, TokenSpan b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small > 0 && large / small >= kGallopDispatchRatio) return OverlapSizeGalloping(a, b);
  return OverlapSizeSimd(a, b);
}

size_t OverlapSizeAtLeast(TokenSpan a, TokenSpan b, size_t required) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  // An unreachable bound (required > min size) can't produce a qualifying
  // overlap; say so without touching the data. Returning `small` satisfies
  // the contract: it is < required and equals the largest possible overlap.
  if (required > small) return small;
  if (small > 0 && large / small >= kGallopDispatchRatio) {
    // Galloping is already o(|a|+|b|) and the probe positions don't line up
    // with remaining-element bounds; run it to completion (exact count
    // satisfies the contract unconditionally).
    return OverlapSizeGalloping(a, b);
  }
  return internal_simd::OverlapAtLeastDispatch(a.data(), a.size(), b.data(), b.size(), required);
}

size_t OverlapSizeSimd(TokenSpan a, TokenSpan b) {
  return internal_simd::OverlapDispatch(a.data(), a.size(), b.data(), b.size());
}

const char* OverlapSimdKernelName() { return internal_simd::KernelName(); }

double Jaccard(TokenSpan a, TokenSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = OverlapSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double Dice(TokenSpan a, TokenSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = OverlapSize(a, b);
  const size_t denom = a.size() + b.size();
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(inter) / static_cast<double>(denom);
}

double CosineSet(TokenSpan a, TokenSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = OverlapSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

double OverlapCoefficient(TokenSpan a, TokenSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = OverlapSize(a, b);
  return static_cast<double>(inter) / static_cast<double>(std::min(a.size(), b.size()));
}

double SetSimilarity(SetMeasure measure, TokenSpan a, TokenSpan b) {
  switch (measure) {
    case SetMeasure::kJaccard:
      return Jaccard(a, b);
    case SetMeasure::kDice:
      return Dice(a, b);
    case SetMeasure::kCosine:
      return CosineSet(a, b);
    case SetMeasure::kOverlapCoefficient:
      return OverlapCoefficient(a, b);
  }
  CROWDER_CHECK(false) << "unknown measure";
  return 0.0;
}

double SimilarityFromOverlap(SetMeasure measure, size_t size_a, size_t size_b, size_t overlap) {
  // Each branch replays the corresponding measure function's double
  // operations exactly (same guards, same order), so scoring from a known
  // overlap is bitwise the measure's own result.
  if (size_a == 0 && size_b == 0) return 1.0;
  switch (measure) {
    case SetMeasure::kJaccard: {
      const size_t uni = size_a + size_b - overlap;
      return uni == 0 ? 0.0 : static_cast<double>(overlap) / static_cast<double>(uni);
    }
    case SetMeasure::kDice: {
      const size_t denom = size_a + size_b;
      return denom == 0 ? 0.0
                        : 2.0 * static_cast<double>(overlap) / static_cast<double>(denom);
    }
    case SetMeasure::kCosine: {
      if (size_a == 0 || size_b == 0) return 0.0;
      return static_cast<double>(overlap) /
             std::sqrt(static_cast<double>(size_a) * static_cast<double>(size_b));
    }
    case SetMeasure::kOverlapCoefficient: {
      if (size_a == 0 || size_b == 0) return 0.0;
      return static_cast<double>(overlap) / static_cast<double>(std::min(size_a, size_b));
    }
  }
  CROWDER_CHECK(false) << "unknown measure";
  return 0.0;
}

size_t MinCompatibleSize(SetMeasure measure, size_t size, double threshold) {
  if (threshold <= 0.0) return 0;
  const double s = static_cast<double>(size);
  double lower = 0.0;
  switch (measure) {
    case SetMeasure::kJaccard:
      // |b| >= t * |a|
      lower = threshold * s;
      break;
    case SetMeasure::kDice:
      // 2|a∩b| >= t(|a|+|b|) and |a∩b| <= |b|  =>  |b| >= t|a| / (2-t)
      lower = threshold * s / (2.0 - threshold);
      break;
    case SetMeasure::kCosine:
      // |a∩b| <= |b| and |a∩b| >= t sqrt(|a||b|) => |b| >= t^2 |a|
      lower = threshold * threshold * s;
      break;
    case SetMeasure::kOverlapCoefficient:
      // overlap/min >= t always satisfiable for any |b| >= 1.
      lower = 1.0;
      break;
  }
  return static_cast<size_t>(std::ceil(lower - 1e-9));
}

size_t MinRequiredOverlap(SetMeasure measure, size_t sa, size_t sb, double threshold) {
  const double a = static_cast<double>(sa);
  const double b = static_cast<double>(sb);
  double need = 0.0;
  switch (measure) {
    case SetMeasure::kJaccard:
      // o / (a + b - o) >= t  =>  o >= t(a+b) / (1+t)
      need = threshold * (a + b) / (1.0 + threshold);
      break;
    case SetMeasure::kDice:
      need = threshold * (a + b) / 2.0;
      break;
    case SetMeasure::kCosine:
      need = threshold * std::sqrt(a * b);
      break;
    case SetMeasure::kOverlapCoefficient:
      need = threshold * std::min(a, b);
      break;
  }
  return static_cast<size_t>(std::ceil(need - 1e-9));
}

size_t RequiredOverlapExact(SetMeasure measure, size_t sa, size_t sb, double threshold) {
  const size_t cap = std::min(sa, sb);
  // Closed-form start, then ±1 fixup against the actual double formula. The
  // score is monotone non-decreasing in the overlap (each formula divides a
  // non-decreasing numerator by a non-increasing positive denominator, and
  // double division is monotone), so each loop runs at most a step or two —
  // the closed form is off by at most rounding.
  size_t o = std::min(cap, MinRequiredOverlap(measure, sa, sb, threshold));
  while (o > 0 && SimilarityFromOverlap(measure, sa, sb, o - 1) >= threshold) --o;
  while (o <= cap && SimilarityFromOverlap(measure, sa, sb, o) < threshold) ++o;
  return o;  // cap + 1 when even a full overlap scores below the threshold
}

}  // namespace similarity
}  // namespace crowder
