// The vectorized set-intersection kernels behind OverlapSizeSimd /
// OverlapSizeAtLeast (see overlap_simd.h for the dispatch contract).
//
// Shape of the vector kernels (the standard shuffle/compare block merge):
// load one block from each side (8 lanes under AVX2, 4 under SSE2), compare
// the a-block against every rotation of the b-block, OR the equality masks,
// and popcount the lane mask — each a-lane matches at most one b element
// because token sets are strictly increasing, so the popcount is exactly the
// number of a-lanes present in the b-block. Then advance whichever block has
// the smaller maximum (both on a tie): every discarded element has, at that
// point, been compared against every element of the other side it could
// possibly equal, and no element is ever counted twice because each side's
// values are distinct and each a-lane is consumed with its block. Remainders
// fall through to the scalar merge.
//
// The early exit: exact_overlap <= count + min(remaining_a, remaining_b)
// always holds, so once that bound drops below `required` no qualifying
// overlap is reachable and the kernel returns the running count (< required,
// as the OverlapSizeAtLeast contract asks). The bound is checked once per
// block step — a two-instruction tax on the plain intersection (callers pass
// required = 0, which never triggers).
#include "similarity/overlap_simd.h"

#include <algorithm>

#if defined(__x86_64__) || defined(__amd64__)
#define CROWDER_OVERLAP_X86 1
#include <immintrin.h>
#endif

namespace crowder {
namespace similarity {
namespace internal_simd {
namespace {

using text::TokenId;

// Portable reference kernel (and the tail pass of the vector kernels).
size_t OverlapAtLeastScalar(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                            size_t required) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < na && j < nb) {
    if (count + std::min(na - i, nb - j) < required) return count;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#if defined(CROWDER_OVERLAP_X86) && !defined(CROWDER_DISABLE_SIMD)

// SSE2 is x86-64 baseline — no target attribute needed.
size_t OverlapAtLeastSse2(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                          size_t required) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    if (count + std::min(na - i, nb - j) < required) return count;
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    const TokenId amax = a[i + 3];
    const TokenId bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + OverlapAtLeastScalar(a + i, na - i, b + j, nb - j,
                                      required > count ? required - count : 0);
}

__attribute__((target("avx2"))) size_t OverlapAtLeastAvx2(const TokenId* a, size_t na,
                                                          const TokenId* b, size_t nb,
                                                          size_t required) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  // Cross-lane rotate-by-one; applying it repeatedly walks all 8 rotations.
  const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    if (count + std::min(na - i, nb - j) < required) return count;
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i rot = vb;
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      rot = _mm256_permutevar8x32_epi32(rot, rotate1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rot));
    }
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    const TokenId amax = a[i + 7];
    const TokenId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + OverlapAtLeastScalar(a + i, na - i, b + j, nb - j,
                                      required > count ? required - count : 0);
}

#endif  // x86 && !CROWDER_DISABLE_SIMD

using KernelFn = size_t (*)(const TokenId*, size_t, const TokenId*, size_t, size_t);

struct Kernel {
  KernelFn fn;
  const char* name;
};

Kernel ResolveKernel() {
#if defined(CROWDER_OVERLAP_X86) && !defined(CROWDER_DISABLE_SIMD)
  if (__builtin_cpu_supports("avx2")) return {&OverlapAtLeastAvx2, "avx2"};
  return {&OverlapAtLeastSse2, "sse2"};
#else
  return {&OverlapAtLeastScalar, "scalar"};
#endif
}

const Kernel& ActiveKernel() {
  static const Kernel kernel = ResolveKernel();
  return kernel;
}

}  // namespace

size_t OverlapDispatch(const TokenId* a, size_t na, const TokenId* b, size_t nb) {
  return ActiveKernel().fn(a, na, b, nb, 0);
}

size_t OverlapAtLeastDispatch(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                              size_t required) {
  return ActiveKernel().fn(a, na, b, nb, required);
}

const char* KernelName() { return ActiveKernel().name; }

}  // namespace internal_simd
}  // namespace similarity
}  // namespace crowder
