// Levenshtein edit distance and derived similarity, one of the two SVM
// features in CrowdER §7.3 (following Köpcke et al. [18]).
#ifndef CROWDER_SIMILARITY_EDIT_DISTANCE_H_
#define CROWDER_SIMILARITY_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace crowder {
namespace similarity {

/// \brief Classic Levenshtein distance (unit insert/delete/substitute).
/// O(|a|·|b|) time, O(min(|a|,|b|)) memory.
size_t Levenshtein(std::string_view a, std::string_view b);

/// \brief Levenshtein with early exit: returns any value > `bound` as soon as
/// the distance provably exceeds `bound` (banded DP, O(bound·min_len)).
size_t BoundedLevenshtein(std::string_view a, std::string_view b, size_t bound);

/// \brief Normalized edit similarity in [0,1]: 1 - dist / max(|a|,|b|).
/// Two empty strings have similarity 1.
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_EDIT_DISTANCE_H_
