// Similarity join: find all record pairs whose token-set similarity is at or
// above a threshold. This is CrowdER's machine pass ("simjoin", §7.1); the
// paper's footnote 1 and refs [2,5,26] note that indexing avoids the
// all-pairs comparison, which the AllPairs prefix-filtering join implements.
#ifndef CROWDER_SIMILARITY_SIMILARITY_JOIN_H_
#define CROWDER_SIMILARITY_SIMILARITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "similarity/set_similarity.h"

namespace crowder {
namespace similarity {

/// \brief A candidate record pair with its machine likelihood.
/// Invariant: a < b (record indices into the join input).
struct ScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;
  double score = 0.0;

  friend bool operator==(const ScoredPair& x, const ScoredPair& y) {
    return x.a == y.a && x.b == y.b;
  }
};

/// \brief Sorts by (a, b); used to canonicalize join outputs for comparison.
void SortPairs(std::vector<ScoredPair>* pairs);

/// \brief Input to a join: one token set per record, plus optional source
/// labels. When `sources` is non-empty (same length as `sets`), only pairs
/// with *different* labels are emitted — the Abt-Buy Product dataset joins
/// records across two web sources and never within one source. When empty,
/// the join is a self-join over all records.
struct JoinInput {
  std::vector<TokenSet> sets;
  std::vector<int> sources;
};

/// \brief Join configuration.
struct JoinOptions {
  SetMeasure measure = SetMeasure::kJaccard;
  double threshold = 0.3;
};

/// \brief Observability counters a join fills when handed one (purely
/// additive — never part of the result or the byte-identity contract). The
/// join benches report pair_verifications/s so kernel-level regressions show
/// up without an end-to-end run.
struct JoinStats {
  /// Candidate pairs that reached the verify step (an intersection was
  /// computed, fully or until the threshold-aware early exit).
  uint64_t pair_verifications = 0;
};

/// \brief Reference implementation: compares every admissible pair.
/// O(n^2) — used for small inputs, tests, and the ablation baseline.
/// Contract shared with AllPairsJoin: at a positive threshold a pair of two
/// empty token sets is never emitted (no matching evidence), even though
/// every measure scores it 1.0.
Result<std::vector<ScoredPair>> NaiveJoin(const JoinInput& input, const JoinOptions& options,
                                          JoinStats* stats = nullptr);

/// \brief AllPairs-style prefix-filtering join with an inverted index over
/// rare-token prefixes and a size filter. Produces exactly the same pairs as
/// NaiveJoin (property-tested), typically orders of magnitude faster at
/// realistic thresholds.
Result<std::vector<ScoredPair>> AllPairsJoin(const JoinInput& input, const JoinOptions& options,
                                             JoinStats* stats = nullptr);

/// \brief Validates a JoinInput/JoinOptions combination (threshold in [0,1],
/// source labels consistent). Shared by both join implementations.
Status ValidateJoin(const JoinInput& input, const JoinOptions& options);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_SIMILARITY_JOIN_H_
