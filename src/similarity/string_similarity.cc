#include "similarity/string_similarity.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "text/qgram.h"

namespace crowder {
namespace similarity {

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t window =
      std::max(a.size(), b.size()) / 2 > 0 ? std::max(a.size(), b.size()) / 2 - 1 : 0;
  std::vector<char> a_matched(a.size(), 0);
  std::vector<char> b_matched(b.size(), 0);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinkler(std::string_view a, std::string_view b, double prefix_scale) {
  CROWDER_CHECK(prefix_scale >= 0.0 && prefix_scale * 4.0 <= 1.0)
      << "prefix_scale must be in [0, 0.25]";
  const double jaro = Jaro(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double QGramSimilarity(std::string_view a, std::string_view b, int q) {
  const auto ga = text::QGramSet(a, q);
  const auto gb = text::QGramSet(b, q);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (ga[i] > gb[j]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return static_cast<double>(inter) / static_cast<double>(ga.size() + gb.size() - inter);
}

}  // namespace similarity
}  // namespace crowder
