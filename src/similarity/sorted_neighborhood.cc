#include "similarity/sorted_neighborhood.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace crowder {
namespace similarity {

Result<std::vector<CandidatePair>> SortedNeighborhood(
    const std::vector<std::string>& keys, const std::vector<int>& sources,
    const SortedNeighborhoodOptions& options) {
  if (options.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (options.passes == 0) {
    return Status::InvalidArgument("at least one pass required");
  }
  if (!sources.empty() && sources.size() != keys.size()) {
    return Status::InvalidArgument("sources size must match keys size");
  }

  std::vector<CandidatePair> out;
  for (size_t pass = 0; pass < options.passes; ++pass) {
    // Pass-specific key: rotate the token sequence so a different attribute
    // prefix drives the sort each pass.
    std::vector<std::string> pass_keys(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      std::vector<std::string> tokens = SplitWhitespace(keys[i]);
      if (!tokens.empty()) {
        const size_t shift = pass % tokens.size();
        std::rotate(tokens.begin(), tokens.begin() + static_cast<long>(shift), tokens.end());
      }
      pass_keys[i] = Join(tokens, " ");
    }
    std::vector<uint32_t> order(keys.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
      return pass_keys[x] != pass_keys[y] ? pass_keys[x] < pass_keys[y] : x < y;
    });

    for (size_t i = 0; i < order.size(); ++i) {
      for (size_t j = i + 1; j < std::min(order.size(), i + options.window); ++j) {
        const uint32_t a = std::min(order[i], order[j]);
        const uint32_t b = std::max(order[i], order[j]);
        if (!sources.empty() && sources[a] == sources[b]) continue;
        out.push_back({a, b});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const CandidatePair& x, const CandidatePair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const CandidatePair& x, const CandidatePair& y) {
                          return x.a == y.a && x.b == y.b;
                        }),
            out.end());
  return out;
}

}  // namespace similarity
}  // namespace crowder
