#include "similarity/parallel_join.h"

#include <algorithm>
#include <memory>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "similarity/join_internal.h"

namespace crowder {
namespace similarity {

namespace {

using internal::Admissible;

struct ExecKnobs {
  std::unique_ptr<exec::ThreadPool> pool;  // null when running serial
  size_t chunk_size = 256;
  size_t block_records = 4096;
};

ExecKnobs ResolveKnobs(const ParallelJoinOptions& exec_options) {
  ExecKnobs knobs;
  const uint32_t threads = exec::ResolveNumThreads(exec_options.num_threads);
  // num_threads counts the caller, which always participates in draining
  // chunks (exec/parallel.h), so the pool supplies threads - 1 workers.
  if (threads > 1) knobs.pool = std::make_unique<exec::ThreadPool>(threads - 1);
  if (exec_options.chunk_size > 0) knobs.chunk_size = exec_options.chunk_size;
  if (exec_options.block_records > 0) knobs.block_records = exec_options.block_records;
  return knobs;
}

// Probes the records at positions [probe_begin, probe_end) of plan.by_size
// against `global_postings` (records strictly before every probe position,
// accepted unconditionally) and `local_postings` (records in the probe
// range, accepted only when earlier than the probing position). Both
// postings lists are ascending by position, read-only, and shared across
// workers. Appends qualifying pairs to per-chunk shards in chunk order.
std::vector<ScoredPair> ProbeRange(
    const JoinInput& input, const JoinOptions& options, const internal::JoinPlan& plan,
    const std::vector<std::vector<uint32_t>>& global_postings,
    const std::vector<std::vector<uint32_t>>& local_postings,
    size_t probe_begin, size_t probe_end, const ExecKnobs& knobs, JoinStats* stats) {
  const size_t n = input.sets.size();
  const double t = options.threshold;
  const size_t num_probes = probe_end - probe_begin;
  const size_t num_chunks =
      num_probes == 0 ? 0 : (num_probes - 1) / knobs.chunk_size + 1;
  std::vector<std::vector<ScoredPair>> shards(num_chunks);
  // Per-chunk verification counts; each chunk is owned by exactly one worker
  // at a time, so plain uint64_t slots need no atomics — summed after the
  // barrier below.
  std::vector<uint64_t> chunk_verifications(num_chunks, 0);

  exec::ParallelForChunks(
      knobs.pool.get(), probe_begin, probe_end, knobs.chunk_size,
      [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
        std::vector<ScoredPair>* shard = &shards[chunk];
        uint64_t verifications = 0;
        // Per-thread scratch, reused across chunks (and joins) instead of
        // being reallocated-and-zeroed per chunk — with small chunks on
        // large inputs the per-chunk memset would dominate. Invariant:
        // every entry of seen is 0 between probes, because each probe
        // resets exactly the entries it set (the serial join's own
        // O(candidates) cleanup); resize only ever appends zeros, so
        // growing for a bigger join preserves it.
        thread_local std::vector<char> seen;
        thread_local std::vector<uint32_t> candidates;
        if (seen.size() < n) seen.resize(n, 0);
        for (size_t pos = chunk_begin; pos < chunk_end; ++pos) {
          const uint32_t rec = plan.by_size[pos];
          const TokenSpan tokens = plan.ranked(rec);
          if (tokens.empty()) continue;
          const size_t prefix_len = plan.prefix_len[rec];
          const size_t min_partner = plan.min_partner[rec];

          candidates.clear();
          for (size_t p = 0; p < prefix_len; ++p) {
            for (uint32_t q : global_postings[tokens[p]]) {
              const uint32_t other = plan.by_size[q];
              if (seen[other]) continue;
              seen[other] = 1;
              candidates.push_back(other);
            }
            for (uint32_t q : local_postings[tokens[p]]) {
              if (static_cast<size_t>(q) >= pos) break;  // ascending positions
              const uint32_t other = plan.by_size[q];
              if (seen[other]) continue;
              seen[other] = 1;
              candidates.push_back(other);
            }
          }
          for (uint32_t other : candidates) {
            seen[other] = 0;
            if (plan.ranked_size(other) < min_partner) continue;
            if (!Admissible(input, rec, other)) continue;
            ++verifications;
            double sim;
            // Same arena-span verify as the serial join — bitwise the same
            // score as scoring the original sets (internal::VerifyPair).
            if (internal::VerifyPair(options.measure, t, tokens, plan.ranked(other), &sim)) {
              shard->push_back({std::min(rec, other), std::max(rec, other), sim});
            }
          }
        }
        chunk_verifications[chunk] = verifications;
      });

  if (stats != nullptr) {
    for (uint64_t v : chunk_verifications) stats->pair_verifications += v;
  }
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<ScoredPair> out;
  out.reserve(total);
  for (auto& shard : shards) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

// Appends the prefixes of records at positions [pos_begin, pos_end) to
// `postings`, keyed by token rank, storing positions (ascending because
// positions are visited in order).
void IndexRange(const internal::JoinPlan& plan, size_t pos_begin, size_t pos_end,
                std::vector<std::vector<uint32_t>>* postings) {
  for (size_t pos = pos_begin; pos < pos_end; ++pos) {
    const uint32_t rec = plan.by_size[pos];
    const TokenSpan tokens = plan.ranked(rec);
    for (size_t p = 0; p < plan.prefix_len[rec]; ++p) {
      (*postings)[tokens[p]].push_back(static_cast<uint32_t>(pos));
    }
  }
}

}  // namespace

Result<std::vector<ScoredPair>> ParallelAllPairsJoin(const JoinInput& input,
                                                     const JoinOptions& options,
                                                     const ParallelJoinOptions& exec_options,
                                                     JoinStats* stats) {
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, options));
  // Zero threshold admits every pair; prefix filtering degenerates exactly
  // as in the serial join, so defer to the same exhaustive reference.
  if (options.threshold <= 0.0) return NaiveJoin(input, options, stats);

  const internal::JoinPlan plan = internal::BuildJoinPlan(input, options);
  ExecKnobs knobs = ResolveKnobs(exec_options);

  // Full prefix index, then one parallel probe pass over every position with
  // the "earlier position only" filter (local_base 0 makes every posting
  // position-filtered).
  std::vector<std::vector<uint32_t>> local_postings(plan.num_ranks);
  IndexRange(plan, 0, plan.by_size.size(), &local_postings);
  const std::vector<std::vector<uint32_t>> global_postings(plan.num_ranks);

  std::vector<ScoredPair> out =
      ProbeRange(input, options, plan, global_postings, local_postings, 0,
                 plan.by_size.size(), knobs, stats);
  SortPairs(&out);
  return out;
}

Status BlockedAllPairsJoinStream(const JoinInput& input, const JoinOptions& options,
                                 const ParallelJoinOptions& exec_options,
                                 const PairSink& sink, JoinStats* stats) {
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, options));
  if (options.threshold <= 0.0) {
    // Zero threshold admits every pair: the output is O(n^2) by definition,
    // so no algorithm can bound it — defer to the exhaustive join, but still
    // hand the sink bounded blocks (chunks of a sorted vector are each
    // sorted, and their union is the whole result) so the sink's own
    // accounting, e.g. a budgeted PairStream, keeps working.
    CROWDER_ASSIGN_OR_RETURN(auto all, NaiveJoin(input, options, stats));
    const size_t chunk = exec_options.block_records > 0
                             ? static_cast<size_t>(exec_options.block_records) * 16
                             : 65536;
    for (size_t begin = 0; begin < all.size(); begin += chunk) {
      const size_t end = std::min(all.size(), begin + chunk);
      CROWDER_RETURN_NOT_OK(
          sink(std::vector<ScoredPair>(all.begin() + static_cast<ptrdiff_t>(begin),
                                       all.begin() + static_cast<ptrdiff_t>(end))));
    }
    return Status::OK();
  }

  const internal::JoinPlan plan = internal::BuildJoinPlan(input, options);
  ExecKnobs knobs = ResolveKnobs(exec_options);
  const size_t n = plan.by_size.size();

  // Records at positions before the current block, fully indexed; grows as
  // blocks complete. Within a block, a block-local index (position-filtered)
  // covers intra-block pairs — together they cover exactly the "earlier
  // position" partners the serial join pairs each probe with.
  std::vector<std::vector<uint32_t>> global_postings(plan.num_ranks);
  // Reused across blocks; only the lists a block touched are cleared after
  // it (O(block prefix tokens), not O(num_ranks) per block).
  std::vector<std::vector<uint32_t>> local_postings(plan.num_ranks);

  for (size_t block_begin = 0; block_begin < n; block_begin += knobs.block_records) {
    const size_t block_end = std::min(n, block_begin + knobs.block_records);
    IndexRange(plan, block_begin, block_end, &local_postings);

    std::vector<ScoredPair> block_pairs =
        ProbeRange(input, options, plan, global_postings, local_postings,
                   block_begin, block_end, knobs, stats);
    SortPairs(&block_pairs);
    CROWDER_RETURN_NOT_OK(sink(std::move(block_pairs)));

    IndexRange(plan, block_begin, block_end, &global_postings);
    for (size_t pos = block_begin; pos < block_end; ++pos) {
      const uint32_t rec = plan.by_size[pos];
      const TokenSpan tokens = plan.ranked(rec);
      for (size_t p = 0; p < plan.prefix_len[rec]; ++p) {
        local_postings[tokens[p]].clear();
      }
    }
  }
  return Status::OK();
}

Result<std::vector<ScoredPair>> BlockedAllPairsJoin(const JoinInput& input,
                                                    const JoinOptions& options,
                                                    const ParallelJoinOptions& exec_options,
                                                    JoinStats* stats) {
  std::vector<ScoredPair> out;
  CROWDER_RETURN_NOT_OK(BlockedAllPairsJoinStream(
      input, options, exec_options,
      [&out](std::vector<ScoredPair>&& block) {
        out.insert(out.end(), block.begin(), block.end());
        return Status::OK();
      },
      stats));
  SortPairs(&out);
  return out;
}

}  // namespace similarity
}  // namespace crowder
