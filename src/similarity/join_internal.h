// Internal prefix-filtering machinery shared by the serial (similarity_join.cc)
// and parallel/blocked (parallel_join.cc) AllPairs joins. Not part of the
// public similarity API — include only from similarity/*.cc and tests.
//
// The equivalence argument all three joins rest on: each record r gets a
// probe prefix of its prefix_len[r] rarest tokens, and a qualifying pair
// (by the prefix-filtering lemma, evaluated at the worst-case admissible
// partner size min_partner[r]) must share at least one token between the
// two prefixes. A join is therefore exact as long as, for every unordered
// pair, one side probes an index that contains the other side's prefix —
// which the serial join achieves by indexing records as it goes (size
// order), and the parallel joins achieve by probing a full prefix index
// restricted to records earlier in the same size order.
#ifndef CROWDER_SIMILARITY_JOIN_INTERNAL_H_
#define CROWDER_SIMILARITY_JOIN_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "similarity/similarity_join.h"

namespace crowder {
namespace similarity {
namespace internal {

/// \brief Everything the AllPairs family precomputes before pairing:
/// rare-first re-ranked token lists (in one flat arena), the size-ordered
/// processing sequence, and the per-record prefix/size bounds. Pure function
/// of (input, options); building it twice yields identical contents.
///
/// The token arena: every record's rank-sorted token list lives back-to-back
/// in one contiguous `uint32_t` buffer, addressed by (offset, length) spans —
/// probe sets are cache-dense and feed the SIMD intersection kernels
/// directly, instead of hopping across per-record vector allocations.
struct JoinPlan {
  /// All records' tokens re-expressed as global rare-first ranks; record i
  /// occupies arena[token_offset[i], token_offset[i + 1]), sorted ascending.
  std::vector<uint32_t> arena;
  /// n + 1 prefix offsets into `arena` (token_offset[n] == arena.size()).
  std::vector<size_t> token_offset;
  /// Record ids in non-decreasing ranked-size order (stable, so equal sizes
  /// keep id order) — the canonical processing order of every variant.
  std::vector<uint32_t> by_size;
  /// Per record: number of prefix tokens probed AND indexed (0 for empty
  /// records, which never pair at the positive thresholds this plan serves).
  std::vector<size_t> prefix_len;
  /// Per record: minimum ranked-size an admissible partner can have.
  std::vector<size_t> min_partner;
  /// Number of distinct token ranks (postings array size).
  size_t num_ranks = 0;

  /// \brief Record `rec`'s rank-sorted token list as an arena span.
  TokenSpan ranked(uint32_t rec) const {
    const size_t begin = token_offset[rec];
    return TokenSpan(arena.data() + begin, token_offset[rec + 1] - begin);
  }

  /// \brief Ranked-size of record `rec` (== its original token-set size).
  size_t ranked_size(uint32_t rec) const {
    return token_offset[rec + 1] - token_offset[rec];
  }
};

/// \brief Builds the plan. Requires options.threshold > 0 (the zero-threshold
/// case degenerates to the exhaustive join in every caller).
JoinPlan BuildJoinPlan(const JoinInput& input, const JoinOptions& options);

/// \brief The per-record half of the precompute, factored out of
/// BuildJoinPlan so an *incremental* index (serve/incremental_index.h) can
/// grow a plan one record at a time: given only a record's ranked size, the
/// prefix length it probes/indexes and the minimum admissible partner size.
/// Pure function of (measure, threshold, size); threshold must be > 0.
///
/// The bounds are order-symmetric: the prefix-filtering lemma they encode
/// ("two qualifying records must share a token within their first
/// size - alpha + 1 tokens under any one total token order") does not
/// depend on which record is probing and which is indexed, only on both
/// sides using prefixes at least this long under the *same* token order.
/// That is what lets the batch join process records in size order while the
/// incremental index inserts them in arrival order — both are exact.
struct PrefixBounds {
  /// Tokens of the record's rank-sorted list that are probed AND indexed
  /// (0 for an empty record, which never pairs at a positive threshold).
  size_t prefix_len = 0;
  /// Minimum ranked-size an admissible partner can have.
  size_t min_partner = 1;
};

/// \brief Computes the bounds for one record of `size` tokens. See
/// PrefixBounds for the contract.
PrefixBounds ComputePrefixBounds(SetMeasure measure, double threshold, size_t size);

/// \brief Shared admissibility rule: every pair qualifies in a self-join;
/// with source labels, only cross-source pairs do. One definition for every
/// join variant so the exact-equivalence contract can't silently fork.
inline bool Admissible(const JoinInput& input, uint32_t a, uint32_t b) {
  return input.sources.empty() || input.sources[a] != input.sources[b];
}

/// \brief The shared threshold-aware verify step: decides `sim(a, b) >=
/// threshold` and, when it holds, leaves the score in `*sim` — while
/// allowing the intersection to exit early on unpromising pairs.
///
/// Bitwise equal to "intersect fully, compute the measure, compare":
///  * RequiredOverlapExact makes `overlap >= required ⟺ sim >= threshold`
///    exact in the measure's own double arithmetic, so the early exit can
///    only fire on pairs the full computation would reject;
///  * when the pair qualifies, OverlapSizeAtLeast has returned the exact
///    overlap, and SimilarityFromOverlap replays the measure's exact double
///    operations on it.
/// Spans may be the *ranked* arena lists rather than the original token
/// sets: the rank map is a bijection, so the overlap is the same number,
/// the sizes are the same, and every measure is a function of (sizes,
/// overlap) only — the score is the original sets' score, bitwise.
inline bool VerifyPair(SetMeasure measure, double threshold, TokenSpan a, TokenSpan b,
                       double* sim) {
  const size_t required = RequiredOverlapExact(measure, a.size(), b.size(), threshold);
  const size_t overlap = OverlapSizeAtLeast(a, b, required);
  if (overlap < required) return false;
  *sim = SimilarityFromOverlap(measure, a.size(), b.size(), overlap);
  return true;
}

}  // namespace internal
}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_JOIN_INTERNAL_H_
