// Sorted-neighborhood candidate generation (Hernandez & Stolfo's classic
// merge/purge technique, surveyed in [7]): sort records by a key and pair
// every two records within a sliding window. A second candidate-generation
// substrate besides token blocking; cheap, output size O(n·w), and effective
// when similar records sort near each other.
#ifndef CROWDER_SIMILARITY_SORTED_NEIGHBORHOOD_H_
#define CROWDER_SIMILARITY_SORTED_NEIGHBORHOOD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "similarity/blocking.h"

namespace crowder {
namespace similarity {

struct SortedNeighborhoodOptions {
  /// Window size: records at sorted distance < window become candidates.
  /// Must be >= 2.
  size_t window = 10;
  /// Number of passes with different sort keys (multi-pass SN). Pass p
  /// rotates each record's tokens by p before building its key, so
  /// different prefixes govern the order. More passes, more recall.
  size_t passes = 2;
};

/// \brief Generates candidate pairs by multi-pass sorted neighborhood over
/// the records' normalized text keys. `keys[i]` is the sort key of record i
/// (typically the concatenated normalized record). `sources` follows the
/// JoinInput convention (empty = self-join, else only cross-source pairs).
/// Output is deduplicated, sorted by (a, b).
Result<std::vector<CandidatePair>> SortedNeighborhood(
    const std::vector<std::string>& keys, const std::vector<int>& sources,
    const SortedNeighborhoodOptions& options = {});

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_SORTED_NEIGHBORHOOD_H_
