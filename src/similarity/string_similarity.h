// Additional character-level string similarities standard in ER toolkits
// (e.g. Febrl [6], which the paper cites): Jaro, Jaro-Winkler, and q-gram
// similarity. Useful as alternative likelihood functions and as extra SVM
// feature dimensions.
#ifndef CROWDER_SIMILARITY_STRING_SIMILARITY_H_
#define CROWDER_SIMILARITY_STRING_SIMILARITY_H_

#include <string_view>

namespace crowder {
namespace similarity {

/// \brief Jaro similarity in [0,1]: transposition-tolerant match ratio.
/// Both empty -> 1; one empty -> 0.
double Jaro(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler: Jaro boosted by the length of the common prefix
/// (up to 4 chars) scaled by `prefix_scale` (standard 0.1; must keep
/// prefix_scale * 4 <= 1 so the result stays in [0,1]).
double JaroWinkler(std::string_view a, std::string_view b, double prefix_scale = 0.1);

/// \brief Jaccard similarity of the padded character q-gram sets of the two
/// strings. Robust to token-order and small edits.
double QGramSimilarity(std::string_view a, std::string_view b, int q = 2);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_STRING_SIMILARITY_H_
