#include "similarity/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace crowder {
namespace similarity {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: less memory
  if (b.empty()) return a.size();

  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b, size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > bound) return bound + 1;
  if (b.empty()) return a.size();

  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> prev(b.size() + 1, kInf);
  std::vector<size_t> cur(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), bound); ++j) prev[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    // Band: only |i - j| <= bound can stay within the bound.
    const size_t lo = i > bound ? i - bound : 1;
    const size_t hi = std::min(b.size(), i + bound);
    if (lo > hi) return bound + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 1) cur[0] = i;
    size_t row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t del = prev[j] + 1;
      const size_t ins = cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(prev, cur);
  }
  return std::min(prev[b.size()], bound + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t dist = Levenshtein(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace similarity
}  // namespace crowder
