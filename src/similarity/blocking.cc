#include "similarity/blocking.h"

#include <algorithm>

#include "common/logging.h"
#include "similarity/join_internal.h"

namespace crowder {
namespace similarity {

Result<std::vector<CandidatePair>> TokenBlocking(const JoinInput& input,
                                                 const BlockingOptions& options) {
  JoinOptions probe;  // only used for input validation
  probe.threshold = 0.0;
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, probe));

  text::TokenId max_token = 0;
  for (const auto& set : input.sets) {
    for (text::TokenId tok : set) max_token = std::max(max_token, tok);
  }
  std::vector<std::vector<uint32_t>> blocks(static_cast<size_t>(max_token) + 1);
  for (uint32_t rec = 0; rec < input.sets.size(); ++rec) {
    for (text::TokenId tok : input.sets[rec]) blocks[tok].push_back(rec);
  }

  std::vector<CandidatePair> out;
  for (const auto& block : blocks) {
    if (block.size() < 2) continue;
    if (options.max_block_size > 0 && block.size() > options.max_block_size) continue;
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        const uint32_t a = block[i];
        const uint32_t b = block[j];
        if (!input.sources.empty() && input.sources[a] == input.sources[b]) continue;
        out.push_back({a, b});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const CandidatePair& x, const CandidatePair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const CandidatePair& x, const CandidatePair& y) {
                          return x.a == y.a && x.b == y.b;
                        }),
            out.end());
  return out;
}

Result<std::vector<ScoredPair>> VerifyCandidates(const JoinInput& input,
                                                 const std::vector<CandidatePair>& candidates,
                                                 const JoinOptions& options) {
  CROWDER_RETURN_NOT_OK(ValidateJoin(input, options));
  std::vector<ScoredPair> out;
  out.reserve(candidates.size() / 4);
  for (const auto& cand : candidates) {
    if (cand.a >= input.sets.size() || cand.b >= input.sets.size()) {
      return Status::OutOfRange("candidate pair references record beyond input");
    }
    // Threshold-aware verify over the original sorted sets: bitwise the same
    // accept set and scores as SetSimilarity >= threshold, but free to abandon
    // pairs that cannot reach the threshold (internal::VerifyPair).
    double sim;
    if (internal::VerifyPair(options.measure, options.threshold, input.sets[cand.a],
                             input.sets[cand.b], &sim)) {
      out.push_back({cand.a, cand.b, sim});
    }
  }
  SortPairs(&out);
  return out;
}

}  // namespace similarity
}  // namespace crowder
