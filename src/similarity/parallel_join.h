// Parallel machine pass: multi-threaded and blocked/streaming variants of
// the AllPairs prefix-filtering join (similarity_join.h). Both are exact —
// they produce byte-identical post-SortPairs output to the serial
// AllPairsJoin (and hence NaiveJoin) at any thread count, chunk size, and
// block size; the join-equivalence property test sweeps this contract.
//
// How parallelism preserves the serial semantics: the serial join processes
// records in size order, probing an index of earlier records. Here the full
// prefix index is built once up front (token rank -> positions in the same
// size order, ascending), workers probe disjoint position ranges against it
// read-only, and each probe only accepts partners at *earlier* positions —
// exactly the pairs the serial interleaved build would have found. Scores
// come from the same SetSimilarity call, per-chunk outputs are concatenated
// in chunk order, and the final SortPairs canonicalizes: determinism by
// construction, not by locking.
#ifndef CROWDER_SIMILARITY_PARALLEL_JOIN_H_
#define CROWDER_SIMILARITY_PARALLEL_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "similarity/similarity_join.h"

namespace crowder {
namespace similarity {

/// \brief Execution knobs for the parallel joins.
struct ParallelJoinOptions {
  /// Total threads cooperating on the join, including the calling thread
  /// (0 = exec::HardwareConcurrency(), which honors CROWDER_THREADS;
  /// 1 = no worker threads — the serial algorithm on the caller).
  uint32_t num_threads = 0;
  /// Probe records per scheduling chunk. Small chunks balance skewed record
  /// sizes at slightly higher scheduling cost. 0 = default.
  uint32_t chunk_size = 256;
  /// BlockedAllPairsJoin only: probe records per block — the granularity at
  /// which pairs are materialized/emitted. 0 = default.
  uint32_t block_records = 4096;
};

/// \brief Sharded parallel AllPairs join: workers probe disjoint record
/// ranges over a shared read-only inverted index. Same output as
/// AllPairsJoin, byte-identical after the included SortPairs.
Result<std::vector<ScoredPair>> ParallelAllPairsJoin(
    const JoinInput& input, const JoinOptions& options,
    const ParallelJoinOptions& exec_options = {}, JoinStats* stats = nullptr);

/// \brief Receives each block's pairs as they are produced. Blocks arrive in
/// size-order position, each block internally sorted by (a, b); the global
/// concatenation is NOT (a, b)-sorted — canonicalize with SortPairs if
/// needed. Returning a non-OK status aborts the join with that status.
using PairSink = std::function<Status(std::vector<ScoredPair>&&)>;

/// \brief Blocked/streaming join driver: processes probe records in blocks
/// of `block_records`, probing each block in parallel and emitting its pairs
/// to `sink` before moving on — peak pair memory is one block's output, not
/// the whole result. The union of all emitted blocks equals the serial join
/// output exactly.
Status BlockedAllPairsJoinStream(const JoinInput& input, const JoinOptions& options,
                                 const ParallelJoinOptions& exec_options,
                                 const PairSink& sink, JoinStats* stats = nullptr);

/// \brief Convenience wrapper: accumulates every block and returns the
/// SortPairs-canonicalized result — byte-identical to AllPairsJoin.
Result<std::vector<ScoredPair>> BlockedAllPairsJoin(
    const JoinInput& input, const JoinOptions& options,
    const ParallelJoinOptions& exec_options = {}, JoinStats* stats = nullptr);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_PARALLEL_JOIN_H_
