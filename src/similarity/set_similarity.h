// Set-overlap similarity measures over interned token sets. These are the
// "machine-based technique" of CrowdER §2.1.1: Jaccard over record token sets
// is the paper's likelihood function.
//
// Intersection kernels (the join's hot path) come in three shapes:
//   * OverlapSizeLinear   — scalar merge, O(|a|+|b|); the reference every
//                           other kernel is property-tested against.
//   * OverlapSizeGalloping— O(|small| log |large|); wins on skewed sizes.
//   * OverlapSizeSimd     — vectorized block merge (AVX2, SSE2, or the scalar
//                           merge, chosen once at startup); wins on
//                           comparable sizes.
// OverlapSize dispatches between galloping and SIMD on the size ratio, and
// OverlapSizeAtLeast adds threshold-aware early exit for the verify step.
// Every kernel returns the exact |a ∩ b| (AtLeast: exact whenever it matters
// — see its contract), so which kernel ran is unobservable in any result.
#ifndef CROWDER_SIMILARITY_SET_SIMILARITY_H_
#define CROWDER_SIMILARITY_SET_SIMILARITY_H_

#include <cstddef>
#include <vector>

#include "text/vocabulary.h"

namespace crowder {
namespace similarity {

/// A token set: sorted, deduplicated token ids.
using TokenSet = std::vector<text::TokenId>;

/// \brief A non-owning view of a sorted, deduplicated token sequence — the
/// currency of the intersection kernels, so they run equally over owned
/// TokenSets and over slices of a flat token arena (internal::JoinPlan,
/// serve::IncrementalIndex). Implicitly constructible from a TokenSet, so
/// every TokenSet call site keeps compiling unchanged.
class TokenSpan {
 public:
  constexpr TokenSpan() = default;
  constexpr TokenSpan(const text::TokenId* data, size_t size) : data_(data), size_(size) {}
  /// Implicit view of a whole TokenSet (valid while the set is alive).
  TokenSpan(const TokenSet& set) : data_(set.data()), size_(set.size()) {}  // NOLINT

  constexpr const text::TokenId* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr text::TokenId operator[](size_t i) const { return data_[i]; }
  constexpr const text::TokenId* begin() const { return data_; }
  constexpr const text::TokenId* end() const { return data_ + size_; }

 private:
  const text::TokenId* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Returns a canonical TokenSet (sorts + dedups a token sequence).
TokenSet MakeTokenSet(std::vector<text::TokenId> tokens);

/// \brief |a ∩ b| for sorted sets. Dispatches between the galloping probe
/// (skewed sizes) and the SIMD block merge (comparable sizes); every path
/// returns the same count.
size_t OverlapSize(TokenSpan a, TokenSpan b);

/// \brief Linear merge intersection count — O(|a| + |b|). The portable
/// reference kernel: every other intersection kernel is property-tested
/// against it (and bench_machine's divergence check exits nonzero on any
/// disagreement). Exposed for benches and tests; prefer OverlapSize.
size_t OverlapSizeLinear(TokenSpan a, TokenSpan b);

/// \brief Galloping (exponential + binary probe) intersection count —
/// O(|small| log |large|). Wins when one set is much larger than the other,
/// the common case a prefix-filtering join produces on skewed token-set
/// sizes. Exposed for benches and the equivalence property test; prefer
/// OverlapSize.
size_t OverlapSizeGalloping(TokenSpan a, TokenSpan b);

/// \brief Vectorized block-merge intersection count. Resolved once at
/// startup to the widest kernel the CPU supports: AVX2 (8-lane
/// shuffle/compare), SSE2 (4-lane), or the scalar linear merge on non-x86
/// hardware and under -DCROWDER_DISABLE_SIMD=ON. Exact on every input —
/// the kernels differ only in speed.
size_t OverlapSizeSimd(TokenSpan a, TokenSpan b);

/// \brief Which kernel OverlapSizeSimd resolved to: "avx2", "sse2", or
/// "scalar" (observability for benches and BENCH_machine.json).
const char* OverlapSimdKernelName();

/// \brief Threshold-aware intersection: counts |a ∩ b| but may abandon the
/// scan once the remaining elements cannot lift the count to `required`.
///
/// Contract: when |a ∩ b| >= required the exact overlap is returned;
/// otherwise SOME value < required is returned (how far the scan got).
/// Callers therefore learn exactly "overlap >= required, and if so its exact
/// value" — which, with `required = RequiredOverlapExact(...)`, is exactly
/// what the verify step needs, while unpromising pairs exit after a few
/// blocks instead of a full merge. `required = 0` always returns the exact
/// overlap. Skewed sizes dispatch to the galloping kernel (which is already
/// o(|a|+|b|) and returns the exact count unconditionally).
size_t OverlapSizeAtLeast(TokenSpan a, TokenSpan b, size_t required);

/// \brief Jaccard similarity |a∩b| / |a∪b|; 1.0 when both sets are empty.
double Jaccard(TokenSpan a, TokenSpan b);

/// \brief Dice coefficient 2|a∩b| / (|a|+|b|); 1.0 when both empty.
double Dice(TokenSpan a, TokenSpan b);

/// \brief Set cosine |a∩b| / sqrt(|a||b|); 1.0 when both empty.
double CosineSet(TokenSpan a, TokenSpan b);

/// \brief Overlap coefficient |a∩b| / min(|a|,|b|); 1.0 when both empty.
double OverlapCoefficient(TokenSpan a, TokenSpan b);

/// \brief Which set measure a join should use.
enum class SetMeasure { kJaccard, kDice, kCosine, kOverlapCoefficient };

/// \brief Dispatches on the measure enum.
double SetSimilarity(SetMeasure measure, TokenSpan a, TokenSpan b);

/// \brief The similarity score as a function of the set sizes and the exact
/// overlap — bitwise the value the measure functions above compute (same
/// double operations in the same order), so a caller that already knows
/// |a ∩ b| (e.g. from OverlapSizeAtLeast) can score without re-intersecting.
double SimilarityFromOverlap(SetMeasure measure, size_t size_a, size_t size_b, size_t overlap);

/// \brief For prefix filtering: the minimum size |b| may have so that
/// sim(a, b) >= threshold can still hold, given |a| = size.
size_t MinCompatibleSize(SetMeasure measure, size_t size, double threshold);

/// \brief For prefix filtering: minimum required overlap between sets of
/// sizes `sa` and `sb` for sim >= threshold. Closed-form; a sound lower
/// bound, but not guaranteed tight against the double arithmetic of the
/// score itself — use RequiredOverlapExact when exactness matters.
size_t MinRequiredOverlap(SetMeasure measure, size_t sa, size_t sb, double threshold);

/// \brief The exact integer threshold on the overlap: the minimal o such
/// that SimilarityFromOverlap(measure, sa, sb, o) >= threshold, or
/// min(sa, sb) + 1 when no achievable overlap reaches the threshold. Starts
/// from the closed-form MinRequiredOverlap and fixes it up (±1 steps)
/// against the actual double formula — the score is monotone in the
/// overlap, so the minimal qualifying o is well-defined and
///   overlap >= RequiredOverlapExact(...)  ⟺  sim(overlap) >= threshold
/// holds EXACTLY, in the join's own floating-point arithmetic. This is what
/// lets the verify step cut intersections short (OverlapSizeAtLeast) while
/// emitting bitwise the same pair set as a full intersect-then-compare.
size_t RequiredOverlapExact(SetMeasure measure, size_t sa, size_t sb, double threshold);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_SET_SIMILARITY_H_
