// Set-overlap similarity measures over interned token sets. These are the
// "machine-based technique" of CrowdER §2.1.1: Jaccard over record token sets
// is the paper's likelihood function.
#ifndef CROWDER_SIMILARITY_SET_SIMILARITY_H_
#define CROWDER_SIMILARITY_SET_SIMILARITY_H_

#include <cstddef>
#include <vector>

#include "text/vocabulary.h"

namespace crowder {
namespace similarity {

/// A token set: sorted, deduplicated token ids.
using TokenSet = std::vector<text::TokenId>;

/// \brief Returns a canonical TokenSet (sorts + dedups a token sequence).
TokenSet MakeTokenSet(std::vector<text::TokenId> tokens);

/// \brief |a ∩ b| for sorted sets. Dispatches between the linear merge and
/// the galloping probe below on the size ratio; both return the same count.
size_t OverlapSize(const TokenSet& a, const TokenSet& b);

/// \brief Linear merge intersection count — O(|a| + |b|). The right shape
/// when the sets are comparable in size. Exposed for benches and the
/// equivalence property test; prefer OverlapSize.
size_t OverlapSizeLinear(const TokenSet& a, const TokenSet& b);

/// \brief Galloping (exponential + binary probe) intersection count —
/// O(|small| log |large|). Wins when one set is much larger than the other,
/// the common case a prefix-filtering join produces on skewed token-set
/// sizes. Exposed for benches and the equivalence property test; prefer
/// OverlapSize.
size_t OverlapSizeGalloping(const TokenSet& a, const TokenSet& b);

/// \brief Jaccard similarity |a∩b| / |a∪b|; 1.0 when both sets are empty.
double Jaccard(const TokenSet& a, const TokenSet& b);

/// \brief Dice coefficient 2|a∩b| / (|a|+|b|); 1.0 when both empty.
double Dice(const TokenSet& a, const TokenSet& b);

/// \brief Set cosine |a∩b| / sqrt(|a||b|); 1.0 when both empty.
double CosineSet(const TokenSet& a, const TokenSet& b);

/// \brief Overlap coefficient |a∩b| / min(|a|,|b|); 1.0 when both empty.
double OverlapCoefficient(const TokenSet& a, const TokenSet& b);

/// \brief Which set measure a join should use.
enum class SetMeasure { kJaccard, kDice, kCosine, kOverlapCoefficient };

/// \brief Dispatches on the measure enum.
double SetSimilarity(SetMeasure measure, const TokenSet& a, const TokenSet& b);

/// \brief For prefix filtering: the minimum size |b| may have so that
/// sim(a, b) >= threshold can still hold, given |a| = size.
size_t MinCompatibleSize(SetMeasure measure, size_t size, double threshold);

/// \brief For prefix filtering: minimum required overlap between sets of
/// sizes `sa` and `sb` for sim >= threshold.
size_t MinRequiredOverlap(SetMeasure measure, size_t sa, size_t sb, double threshold);

}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_SET_SIMILARITY_H_
