// Internal seam between the portable similarity API (set_similarity.h) and
// the vectorized intersection kernels (overlap_simd.cc). Not part of the
// public API — include only from similarity/*.cc and tests/benches that
// exercise the kernels directly.
//
// The kernel is resolved ONCE, at first use, to the widest implementation
// the host CPU supports (AVX2 → SSE2 → scalar); non-x86 targets and
// -DCROWDER_DISABLE_SIMD=ON builds always resolve to the scalar merge. All
// kernels share one signature: a threshold-aware intersection count with the
// OverlapSizeAtLeast contract (exact when the overlap reaches `required`,
// some smaller count otherwise; `required = 0` is the plain exact
// intersection).
#ifndef CROWDER_SIMILARITY_OVERLAP_SIMD_H_
#define CROWDER_SIMILARITY_OVERLAP_SIMD_H_

#include <cstddef>

#include "text/vocabulary.h"

namespace crowder {
namespace similarity {
namespace internal_simd {

/// Exact |a ∩ b| via the resolved kernel.
size_t OverlapDispatch(const text::TokenId* a, size_t na, const text::TokenId* b, size_t nb);

/// Threshold-aware count via the resolved kernel (OverlapSizeAtLeast
/// contract).
size_t OverlapAtLeastDispatch(const text::TokenId* a, size_t na, const text::TokenId* b,
                              size_t nb, size_t required);

/// "avx2", "sse2", or "scalar".
const char* KernelName();

}  // namespace internal_simd
}  // namespace similarity
}  // namespace crowder

#endif  // CROWDER_SIMILARITY_OVERLAP_SIMD_H_
