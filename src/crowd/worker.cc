#include "crowd/worker.h"

#include <algorithm>
#include <cmath>

namespace crowder {
namespace crowd {

const char* WorkerTypeName(WorkerType type) {
  switch (type) {
    case WorkerType::kReliable:
      return "reliable";
    case WorkerType::kNoisy:
      return "noisy";
    case WorkerType::kSpammer:
      return "spammer";
    case WorkerType::kColluder:
      return "colluder";
    case WorkerType::kSleeper:
      return "sleeper";
  }
  return "?";
}

namespace {

// The verdict of a colluding ring on a pair. hardness_u is already a
// deterministic per-pair fingerprint (shared by every worker and every run),
// so hashing its mantissa bits against the ring's policy seed yields the
// same yes/no for all ring members, independent of answer order, batch
// boundaries, and thread counts — and consumes nothing from the HIT's
// stream.
bool RingVerdict(uint64_t policy_seed, double hardness_u, double yes_rate) {
  uint64_t state = policy_seed ^ static_cast<uint64_t>(hardness_u * 0x1.0p53);
  const double u = static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
  return u < yes_rate;
}

}  // namespace

double Worker::ErrorProbability(bool truth, double likelihood, double hardness_u,
                                const CrowdModel& model) const {
  double base = 0.0;
  switch (type_) {
    case WorkerType::kReliable:
      base = model.reliable_base_error;
      break;
    case WorkerType::kNoisy:
      base = model.noisy_base_error;
      break;
    case WorkerType::kSpammer:
    case WorkerType::kSleeper:
      // Spam is answer-blind but not error-free 50/50: the worker says yes
      // with spammer_yes_rate regardless of the records, so the
      // truth-conditional error is 1 - yes_rate on true matches and
      // yes_rate on non-matches. (Sleepers spam identically once past the
      // qualification gate.)
      return truth ? 1.0 - model.spammer_yes_rate : model.spammer_yes_rate;
    case WorkerType::kColluder:
      // Marginally over pairs the ring policy says yes with
      // colluder_yes_rate, independent of the records.
      return truth ? 1.0 - model.colluder_yes_rate : model.colluder_yes_rate;
  }
  // Textually-divergent matches and textually-similar non-matches are the
  // hard cases for people; most pairs are easy (hardness_u^exponent shifts
  // the mass toward 0, and the squared trend keeps mid-similarity pairs
  // easy).
  const double linear = std::clamp(truth ? 1.0 - likelihood : likelihood, 0.0, 1.0);
  const double trend = linear * linear;
  const double hardness =
      std::pow(std::clamp(hardness_u, 0.0, 1.0), model.hardness_exponent) * trend;
  return std::min(0.5, base + model.hard_pair_gain * hardness);
}

bool Worker::AnswerPair(bool truth, double likelihood, double hardness_u,
                        const CrowdModel& model) {
  return AnswerPairWith(&rng_, truth, likelihood, hardness_u, model);
}

bool Worker::AnswerPairWith(Rng* rng, bool truth, double likelihood, double hardness_u,
                            const CrowdModel& model) const {
  if (type_ == WorkerType::kSpammer || type_ == WorkerType::kSleeper) {
    return rng->Bernoulli(model.spammer_yes_rate);
  }
  if (type_ == WorkerType::kColluder) {
    return RingVerdict(policy_seed_, hardness_u, model.colluder_yes_rate);
  }
  const double p_err = ErrorProbability(truth, likelihood, hardness_u, model);
  const bool err = rng->Bernoulli(p_err);
  return err ? !truth : truth;
}

bool Worker::TakeQualificationTest(const std::vector<bool>& truths,
                                   const std::vector<double>& likelihoods,
                                   const CrowdModel& model) {
  CROWDER_CHECK_EQ(truths.size(), likelihoods.size());
  // Sleepers exist to defeat this gate: they answer the curated test pairs
  // correctly on purpose, then degrade on real work. Rings coordinate on
  // gold questions the same way.
  if (type_ == WorkerType::kSleeper || type_ == WorkerType::kColluder) return true;
  for (size_t i = 0; i < truths.size(); ++i) {
    if (AnswerPair(truths[i], likelihoods[i], /*hardness_u=*/0.0, model) != truths[i]) {
      return false;
    }
  }
  return true;
}

std::vector<Worker> MakeWorkerPool(const CrowdModel& model, Rng* rng) {
  std::vector<Worker> pool;
  pool.reserve(model.pool_size);
  // Bucket thresholds stack reliable → noisy → colluder → sleeper →
  // spammer. The adversarial fractions default to 0, which collapses their
  // buckets; together with deriving ring seeds arithmetically (no extra
  // draws from `rng`), the default pool is bitwise identical to the
  // pre-adversarial model.
  for (uint32_t i = 0; i < model.pool_size; ++i) {
    const double u = rng->UniformDouble();
    double boundary = model.reliable_fraction;
    WorkerType type = WorkerType::kSpammer;
    if (u < boundary) {
      type = WorkerType::kReliable;
    } else if (u < (boundary += model.noisy_fraction)) {
      type = WorkerType::kNoisy;
    } else if (u < (boundary += model.colluder_fraction)) {
      type = WorkerType::kColluder;
    } else if (u < (boundary += model.sleeper_fraction)) {
      type = WorkerType::kSleeper;
    }
    uint64_t policy_seed = 0;
    if (type == WorkerType::kColluder) {
      // Ring membership round-robins on worker id; the seed is a pure
      // function of the ring id so every member shares the policy.
      const uint32_t rings = std::max<uint32_t>(1, model.colluder_rings);
      uint64_t state = 0xC011D3D51A7EB00FULL ^ (i % rings);
      policy_seed = SplitMix64(&state);
    }
    const double speed = std::exp(rng->Gaussian(0.0, model.speed_sigma));
    pool.emplace_back(i, type, speed, rng->Fork(i), policy_seed);
  }
  return pool;
}

}  // namespace crowd
}  // namespace crowder
