#include "crowd/worker.h"

#include <algorithm>
#include <cmath>

namespace crowder {
namespace crowd {

const char* WorkerTypeName(WorkerType type) {
  switch (type) {
    case WorkerType::kReliable:
      return "reliable";
    case WorkerType::kNoisy:
      return "noisy";
    case WorkerType::kSpammer:
      return "spammer";
  }
  return "?";
}

double Worker::ErrorProbability(bool truth, double likelihood, double hardness_u,
                                const CrowdModel& model) const {
  double base = 0.0;
  switch (type_) {
    case WorkerType::kReliable:
      base = model.reliable_base_error;
      break;
    case WorkerType::kNoisy:
      base = model.noisy_base_error;
      break;
    case WorkerType::kSpammer:
      return 0.5;  // spam carries no signal; nominal "error rate"
  }
  // Textually-divergent matches and textually-similar non-matches are the
  // hard cases for people; most pairs are easy (hardness_u^exponent shifts
  // the mass toward 0, and the squared trend keeps mid-similarity pairs
  // easy).
  const double linear = std::clamp(truth ? 1.0 - likelihood : likelihood, 0.0, 1.0);
  const double trend = linear * linear;
  const double hardness =
      std::pow(std::clamp(hardness_u, 0.0, 1.0), model.hardness_exponent) * trend;
  return std::min(0.5, base + model.hard_pair_gain * hardness);
}

bool Worker::AnswerPair(bool truth, double likelihood, double hardness_u,
                        const CrowdModel& model) {
  return AnswerPairWith(&rng_, truth, likelihood, hardness_u, model);
}

bool Worker::AnswerPairWith(Rng* rng, bool truth, double likelihood, double hardness_u,
                            const CrowdModel& model) const {
  if (type_ == WorkerType::kSpammer) {
    return rng->Bernoulli(model.spammer_yes_rate);
  }
  const double p_err = ErrorProbability(truth, likelihood, hardness_u, model);
  const bool err = rng->Bernoulli(p_err);
  return err ? !truth : truth;
}

bool Worker::TakeQualificationTest(const std::vector<bool>& truths,
                                   const std::vector<double>& likelihoods,
                                   const CrowdModel& model) {
  CROWDER_CHECK_EQ(truths.size(), likelihoods.size());
  for (size_t i = 0; i < truths.size(); ++i) {
    if (AnswerPair(truths[i], likelihoods[i], /*hardness_u=*/0.0, model) != truths[i]) {
      return false;
    }
  }
  return true;
}

std::vector<Worker> MakeWorkerPool(const CrowdModel& model, Rng* rng) {
  std::vector<Worker> pool;
  pool.reserve(model.pool_size);
  for (uint32_t i = 0; i < model.pool_size; ++i) {
    const double u = rng->UniformDouble();
    WorkerType type = WorkerType::kSpammer;
    if (u < model.reliable_fraction) {
      type = WorkerType::kReliable;
    } else if (u < model.reliable_fraction + model.noisy_fraction) {
      type = WorkerType::kNoisy;
    }
    const double speed = std::exp(rng->Gaussian(0.0, model.speed_sigma));
    pool.emplace_back(i, type, speed, rng->Fork(i));
  }
  return pool;
}

}  // namespace crowd
}  // namespace crowder
