// AsyncCrowdBackend: the hostile-transport adapter. Wraps any synchronous
// CrowdBackend and re-delivers its answers the way a real platform does —
// out of order and in partial batches — so the driver seam can be tested
// (and hardened) against asynchrony without a live crowd.
#ifndef CROWDER_CROWD_ASYNC_BACKEND_H_
#define CROWDER_CROWD_ASYNC_BACKEND_H_

#include <cstdint>
#include <vector>

#include "crowd/backend.h"

namespace crowder {
namespace crowd {

/// \brief Construction knobs for AsyncCrowdBackend.
struct AsyncCrowdOptions {
  /// Most HIT deliveries one Poll returns (>= 1). Smaller values mean more
  /// partial batches per round.
  uint32_t hits_per_poll = 2;
};

/// \brief Delivers a wrapped backend's answers asynchronously: Post obtains
/// the round's full answer from the inner backend, assigns every HIT a
/// completion time under the crowd model's arrival/duration model (workers
/// trickle in Poisson-style; a HIT's votes land when its slowest assignment
/// finishes), and Poll then returns the HITs in *completion order* —
/// generally out of HIT order — a few at a time, with `complete = false`
/// until the last delivery.
///
/// Deterministic given (model, seed, batch): arrival draws come from an Rng
/// derived per round, never from wall clock. The *set* of votes equals the
/// inner backend's exactly; only delivery order and batching differ — which
/// is why an async run's aggregate decisions match a synchronous run's under
/// order-insensitive aggregation, and why the driver must file each HIT
/// exactly once (it rejects re-deliveries by name).
///
/// Drain() makes the next Poll of each outstanding ticket deliver
/// everything left. Finish() forwards to the inner backend and fails while
/// undelivered votes remain.
class AsyncCrowdBackend : public CrowdBackend {
 public:
  /// \brief Wraps `inner` (not owned; must outlive this adapter). `model`
  /// supplies the arrival-time model, `seed` the deterministic stream.
  AsyncCrowdBackend(CrowdBackend* inner, const CrowdModel& model, uint64_t seed,
                    AsyncCrowdOptions options = {});

  Result<Ticket> Post(const HitBatch& batch) override;
  Result<VoteBatch> Poll(Ticket ticket) override;
  Status Drain() override;
  Result<CrowdRunResult> Finish() override;

 private:
  /// One HIT's votes + assignments, tagged with its completion time.
  struct Delivery {
    double arrival_seconds = 0.0;
    HitVotes votes;
    std::vector<AssignmentRecord> assignments;
  };

  CrowdBackend* inner_;
  CrowdModel model_;
  uint64_t seed_;
  AsyncCrowdOptions options_;

  std::vector<Delivery> deliveries_;  ///< completion order
  size_t next_delivery_ = 0;
  Ticket ticket_ = 0;
  bool ticket_outstanding_ = false;
  bool drain_ = false;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_ASYNC_BACKEND_H_
