#include "crowd/worker_filter.h"

namespace crowder {
namespace crowd {

std::vector<uint32_t> ApprovalRateWorkerFilter::Review(const std::vector<WorkerStats>& stats) {
  std::vector<uint32_t> banned;
  for (const WorkerStats& w : stats) {
    const bool disapproved =
        w.num_votes >= options_.min_votes && w.ApprovalRate() < options_.min_approval_rate;
    const bool too_fast = options_.min_assignment_seconds > 0.0 && w.num_assignments > 0 &&
                          w.MeanAssignmentSeconds() < options_.min_assignment_seconds;
    if (disapproved || too_fast) banned.push_back(w.worker);
  }
  return banned;
}

}  // namespace crowd
}  // namespace crowder
