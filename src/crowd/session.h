// Incremental, batch-parallel crowd simulation.
//
// CrowdSession is the streaming counterpart of CrowdPlatform::Run*Hits: HITs
// arrive in batches (from an incremental HIT generator or all at once), each
// batch is simulated with exec::ParallelMap, and Finish() assembles the same
// CrowdRunResult the one-shot entry points return.
//
// Determinism argument (pinned by crowd_test and the golden workflow test):
// every HIT is simulated from its own Rng derived from (platform seed,
// global HIT index) — never from state mutated by earlier HITs. Worker
// answers draw from that per-HIT stream via Worker::AnswerPairWith, not from
// the workers' own streams, so a worker's verdicts do not depend on what
// else they were assigned. Two consequences the staged workflow relies on:
//
//   1. Batch boundaries are invisible: one HIT per batch, one big batch, or
//      any partition in between yields bitwise-identical results.
//   2. Thread counts are invisible: per-HIT outcomes land in slots indexed
//      by position and merge in HIT order (exec/parallel.h's layout
//      determinism), so any `num_threads` produces the same bytes.
//
// The wall-clock completion simulation (worker arrival process) needs the
// whole assignment list, so it runs once, sequentially, inside Finish() from
// its own derived stream.
#ifndef CROWDER_CROWD_SESSION_H_
#define CROWDER_CROWD_SESSION_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crowd/platform.h"
#include "exec/thread_pool.h"
#include "hitgen/hit.h"

namespace crowder {
namespace crowd {

/// \brief Derives the independent Rng a component uses for `salt` under a
/// session seed. Distinct salts give statistically independent streams;
/// CrowdSession uses the global HIT index as the salt.
Rng DeriveRng(uint64_t seed, uint64_t salt);

/// \brief Deterministic per-pair hardness draw in [0,1): the same pair is
/// equally confusing for every worker and every run, which is what makes
/// replication imperfect insurance (as on the real platform). Exported so
/// the serving stack's per-pair crowd simulation (serve/pair_crowd.h) draws
/// the *same* hardness the batch session does.
double PairHardness(uint32_t a, uint32_t b);

/// \brief Picks `count` distinct entries of `eligible` using `rng` (sample
/// without replacement over positions). Shared by the batch session and the
/// serving stack so both assign the same workers to the same draw.
std::vector<uint32_t> PickWorkersFrom(const std::vector<uint32_t>& eligible, uint32_t count,
                                      Rng* rng);

/// \brief One crowd run, fed HIT batches incrementally.
///
/// A session is either pair-based or cluster-based — determined by the first
/// Process call; mixing the two in one session is an error. The platform and
/// the vectors the context points at must outlive the session (the context
/// struct itself is copied).
///
/// Two usage shapes:
///
///   * Classic (`Create`): one pair context for the whole run; votes come
///     back inside `Finish()`'s CrowdRunResult, aligned to the context's
///     pair list.
///   * Partitioned (`CreatePartitioned`): the pair list is consumed in
///     bounded partitions. For each partition the caller calls
///     `StartPartition(pairs)`, processes its HIT batches, and drains the
///     partition-local vote table with `TakePartitionVotes()`; `Finish()`
///     then runs the one global completion simulation over every
///     assignment of every partition. Because each HIT draws from its
///     per-(seed, global-HIT-index) stream, the votes and assignments are
///     bitwise what the classic shape produces for the concatenated pair
///     list — partition boundaries are exactly as invisible as batch
///     boundaries.
class CrowdSession {
 public:
  /// Validates the context and prepares the vote table. `num_threads`
  /// follows the workflow convention (0 = auto via CROWDER_THREADS /
  /// hardware, 1 = serial on the caller); results are identical at any
  /// value.
  static Result<std::unique_ptr<CrowdSession>> Create(const CrowdPlatform& platform,
                                                      const CrowdContext& context,
                                                      uint32_t num_threads = 1);

  /// Partitioned-boundary variant: no pair context yet — the caller must
  /// StartPartition before the first Process call. `entity_of` must outlive
  /// the session. With `capture_responses` the session records votes per
  /// HIT (drained with TakePartitionResponses — the provenance a
  /// crowd::CrowdBackend exports) *instead of* the per-pair vote table, so
  /// TakePartitionVotes becomes an error; capture never changes the
  /// simulation itself.
  static Result<std::unique_ptr<CrowdSession>> CreatePartitioned(
      const CrowdPlatform& platform, const std::vector<uint32_t>& entity_of,
      uint32_t num_threads = 1, bool capture_responses = false);

  /// Re-points the session at the next partition's pair list (which must
  /// outlive the partition) and opens a fresh vote table aligned to it.
  /// Requires the previous partition's votes to have been taken. Global HIT
  /// indexing continues across partitions.
  Status StartPartition(const std::vector<similarity::ScoredPair>& pairs);

  /// Drains the current partition's vote table (votes[i] aligned to pair i
  /// of the current partition's list) and closes the partition. The
  /// assignment/worker/latency accumulators keep running; only votes are
  /// handed off per partition.
  Result<aggregate::VoteTable> TakePartitionVotes();

  /// One simulated HIT's votes, in cast order, with partition-local pair
  /// indices (positions in the partition's pair list).
  struct HitResponse {
    uint32_t hit = 0;  ///< global HIT index
    std::vector<std::pair<size_t, aggregate::Vote>> votes;
  };

  /// What TakePartitionResponses drains for one partition.
  struct PartitionResponses {
    /// Per-HIT responses, in global HIT order.
    std::vector<HitResponse> hits;
    /// The partition's assignment records, in publish order.
    std::vector<AssignmentRecord> assignments;
  };

  /// Capture-mode counterpart of TakePartitionVotes: drains the current
  /// partition's per-HIT responses and assignment records and closes the
  /// partition. Requires CreatePartitioned(..., capture_responses = true)
  /// — in that mode the per-pair vote table is never built (the responses
  /// carry every vote, with HIT provenance).
  Result<PartitionResponses> TakePartitionResponses();

  CrowdSession(const CrowdSession&) = delete;
  CrowdSession& operator=(const CrowdSession&) = delete;

  /// Simulates a batch of pair-based HITs with global indices
  /// [num_hits(), num_hits() + batch.size()).
  Status ProcessPairHits(const std::vector<hitgen::PairBasedHit>& batch);

  /// Simulates a batch of cluster-based HITs (the §6 labelling procedure).
  Status ProcessClusterHits(const std::vector<hitgen::ClusterBasedHit>& batch);

  /// Global HITs processed so far.
  uint32_t num_hits() const { return next_hit_; }

  /// Runs the completion simulation and returns the assembled result.
  /// Terminal: Process/Finish must not be called again afterwards.
  Result<CrowdRunResult> Finish();

 private:
  // Everything one simulated HIT produces, merged in HIT order.
  struct HitOutcome {
    Status status;  // first validation error wins, deterministically
    // (pair index, vote) in cast order.
    std::vector<std::pair<size_t, aggregate::Vote>> votes;
    std::vector<AssignmentRecord> assignments;
    double visible_items = 0.0;
  };

  CrowdSession(const CrowdPlatform& platform, const CrowdContext& context,
               uint32_t num_threads);

  HitOutcome SimulatePairHit(uint32_t hit_index, const hitgen::PairBasedHit& hit) const;
  HitOutcome SimulateClusterHit(uint32_t hit_index, const hitgen::ClusterBasedHit& hit) const;
  Status MergeOutcomes(std::vector<HitOutcome>&& outcomes);

  const CrowdPlatform& platform_;
  CrowdContext context_;  // two pointers; copied so temporaries are safe;
                          // pairs re-pointed per partition in partitioned use
  std::unordered_map<uint64_t, size_t> pair_index_;  // PairKey(a,b) -> index
  std::unique_ptr<exec::ThreadPool> pool_;           // null when serial

  // Accumulated across batches.
  CrowdRunResult result_;
  // Per-HIT capture (capture_responses_ only), reset per partition.
  std::vector<HitResponse> hit_responses_;
  size_t partition_assignment_begin_ = 0;
  bool capture_responses_ = false;
  std::vector<uint32_t> hit_of_assignment_;
  std::vector<char> worker_used_;
  double total_visible_ = 0.0;
  uint32_t next_hit_ = 0;
  bool cluster_interface_ = false;
  bool type_fixed_ = false;
  bool finished_ = false;
  /// A pair context is installed and its votes have not been taken. Classic
  /// sessions open their single implicit partition at Create; partitioned
  /// sessions toggle via StartPartition / TakePartitionVotes.
  bool partition_open_ = false;
  /// Set when a batch failed mid-merge (a prefix of its HITs is already
  /// counted); every later Process*/Finish call is rejected so the partial
  /// state can never leak into a result.
  bool failed_ = false;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_SESSION_H_
