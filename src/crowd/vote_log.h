/// \file
/// \brief The JSONL vote log: recording a crowd run for exact replay.
///
/// A vote log captures everything a crowd returned — per HIT: the HIT's
/// identity (its pairs or records), every vote in cast order, and the
/// assignment records — plus a trailing finish record with the run's
/// statistics. `VoteLogWriter` produces the format (usually as
/// `SimulatedCrowdBackend`'s tee); `RecordedCrowdBackend` replays it as a
/// `crowd::CrowdBackend`, reproducing the ranked workflow output byte for
/// byte without simulating anything.
///
/// Format: one JSON object per line.
///
///     {"crowder_vote_log":1}                                   // header
///     {"hit":0,"pairs":[[1,5],[2,7]],
///      "votes":[[1,5,3,1],[2,7,4,0]],                          // [a,b,worker,match]
///      "assignments":[[3,12.25,2,0],[4,13.5,2,0]]}             // [worker,secs,comparisons,spammer]
///     {"hit":1,"records":[4,8,9], ...}                         // cluster HIT
///     {"finish":{"total_seconds":...,"cost_dollars":..., ...}} // footer
///
/// Doubles are printed with std::to_chars (shortest round-trip form,
/// locale-independent) and parsed with std::from_chars, so every finite
/// IEEE-754 value round-trips exactly — replayed assignment durations and
/// statistics are bitwise the recorded ones, regardless of the embedding
/// process's locale. Because lines are keyed by *global HIT index*
/// and HIT identity, a log records the HIT sequence, not the round
/// partitioning: a run recorded under one partition capacity (or execution
/// mode) replays under any other, as long as the generated HIT sequence is
/// identical — which the workflow's byte-identity contract guarantees.
///
/// Replay failures are `StatusCode::kDataLoss` and name the offending HIT
/// index: a truncated log, a HIT whose recorded identity mismatches the
/// generated one, or a missing finish record.
#ifndef CROWDER_CROWD_VOTE_LOG_H_
#define CROWDER_CROWD_VOTE_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "crowd/backend.h"

namespace crowder {
namespace crowd {

/// \brief Appends crowd responses to a JSONL vote log.
///
/// Lifecycle: Create → WriteBatch per answered HitBatch (in HIT order) →
/// WriteFinish once → Close. `SimulatedCrowdBackend` drives the first two
/// when installed as its tee; the owner must still Close (which flushes and
/// surfaces any deferred I/O error).
class VoteLogWriter {
 public:
  /// \brief Opens `path` for writing (truncating) and writes the header
  /// line.
  static Result<std::unique_ptr<VoteLogWriter>> Create(const std::string& path);

  /// \brief Appends one line per HIT of `batch`, pairing each HIT's
  /// identity from `hits` with its votes and assignment records from
  /// `votes`.
  Status WriteBatch(const HitBatch& hits, const VoteBatch& votes);

  /// \brief Appends the finish record carrying the run statistics.
  Status WriteFinish(const CrowdRunResult& stats);

  /// \brief Flushes and closes; returns the first I/O error, if any.
  /// Terminal.
  Status Close();

  /// \brief Log path (for reports).
  const std::string& path() const { return path_; }

 private:
  VoteLogWriter(std::string path, std::ofstream out);

  std::string path_;
  std::ofstream out_;
  bool closed_ = false;
  /// A write failed (I/O or an out-of-order VoteBatch): the log on disk may
  /// be partial, so every later Write*/Close reports the log as incomplete
  /// rather than sealing it (the failed_ latch discipline).
  bool failed_ = false;
};

/// \brief Replays a recorded vote log as a crowd.
///
/// The backend streams the log (bounded memory): each posted batch consumes
/// the next `batch.num_hits()` lines, verifying per HIT that the recorded
/// global index and identity (pairs / records) match the generated HIT —
/// any divergence is a `kDataLoss` error naming the HIT index. Finish
/// requires the finish record and returns the recorded statistics with the
/// replayed assignment trail.
class RecordedCrowdBackend : public CrowdBackend {
 public:
  /// \brief Opens `path` and validates the header line.
  static Result<std::unique_ptr<RecordedCrowdBackend>> Open(const std::string& path);

  Result<Ticket> Post(const HitBatch& batch) override;
  Result<VoteBatch> Poll(Ticket ticket) override;
  Result<CrowdRunResult> Finish() override;

 private:
  RecordedCrowdBackend(std::string path, std::ifstream in);

  /// Reads the next log line into `line` (false at EOF).
  bool NextLine(std::string* line);

  std::string path_;
  std::ifstream in_;
  const HitBatch* pending_batch_ = nullptr;  // non-owning; valid until Poll
  Ticket next_ticket_ = 0;
  bool ticket_outstanding_ = false;
  bool finished_ = false;
  uint32_t hits_replayed_ = 0;
  std::vector<AssignmentRecord> assignments_;  // replayed audit trail
  std::vector<double> assignment_seconds_;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_VOTE_LOG_H_
