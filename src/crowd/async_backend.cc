#include "crowd/async_backend.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "crowd/session.h"  // DeriveRng

namespace crowder {
namespace crowd {

namespace {

// Salt for the per-round arrival stream — disjoint from the HIT index range
// and from the completion simulation's ~0ULL, so the adapter never rewinds
// a stream the simulator uses.
constexpr uint64_t kAsyncSalt = 0xA57AC4B0FFEEDD01ULL;

}  // namespace

AsyncCrowdBackend::AsyncCrowdBackend(CrowdBackend* inner, const CrowdModel& model,
                                     uint64_t seed, AsyncCrowdOptions options)
    : inner_(inner), model_(model), seed_(seed), options_(options) {
  if (options_.hits_per_poll == 0) options_.hits_per_poll = 1;
}

Result<Ticket> AsyncCrowdBackend::Post(const HitBatch& batch) {
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Post before the previous batch was fully delivered");
  }
  CROWDER_RETURN_NOT_OK(ValidateBatchShape(batch));

  // Let the inner (synchronous) backend answer the round now; asynchrony is
  // purely a property of the delivery schedule this adapter imposes.
  CROWDER_ASSIGN_OR_RETURN(const Ticket inner_ticket, inner_->Post(batch));
  CROWDER_ASSIGN_OR_RETURN(VoteBatch all, inner_->Poll(inner_ticket));

  // Group the answer per HIT: votes and the HIT's assignment records.
  std::unordered_map<uint32_t, size_t> delivery_of_hit;
  deliveries_.clear();
  deliveries_.reserve(all.hit_votes.size());
  for (HitVotes& hv : all.hit_votes) {
    delivery_of_hit[hv.hit] = deliveries_.size();
    Delivery d;
    d.votes = std::move(hv);
    deliveries_.push_back(std::move(d));
  }
  for (AssignmentRecord& rec : all.assignments) {
    const auto it = delivery_of_hit.find(rec.hit);
    if (it == delivery_of_hit.end()) {
      // An assignment for a HIT without a vote entry (possible for custom
      // inner backends) still has to be delivered exactly once: give it a
      // delivery of its own with an empty vote list.
      Delivery d;
      d.votes.hit = rec.hit;
      delivery_of_hit[rec.hit] = deliveries_.size();
      d.assignments.push_back(rec);
      deliveries_.push_back(std::move(d));
      continue;
    }
    deliveries_[it->second].assignments.push_back(rec);
  }

  // Completion times under the arrival model (crowd_model.h): HITs are
  // picked up in publish order as workers trickle in at the model's Poisson
  // rate, and a HIT's answer lands when its slowest assignment finishes —
  // so a slow worker on an early HIT overtakes later HITs, which is exactly
  // the out-of-order shape real platforms produce.
  const bool cluster = batch.cluster_hits != nullptr && !batch.cluster_hits->empty();
  const double familiarity = cluster ? model_.familiarity_cluster : model_.familiarity_pair;
  double visible = 0.0;
  if (cluster) {
    for (const auto& hit : *batch.cluster_hits) visible += static_cast<double>(hit.records.size());
  } else if (batch.pair_hits != nullptr) {
    for (const auto& hit : *batch.pair_hits) visible += static_cast<double>(hit.pairs.size());
  }
  if (!deliveries_.empty()) visible /= static_cast<double>(deliveries_.size());
  double rate_per_min =
      model_.base_arrival_per_minute * familiarity * std::exp(-visible / model_.effort_scale);
  if (model_.qualification_test) rate_per_min *= model_.qualification_arrival_factor;
  const double rate_per_sec = std::max(rate_per_min, 1e-3) / 60.0;

  Rng rng = DeriveRng(seed_ ^ kAsyncSalt, batch.first_hit);
  double pickup = 0.0;
  for (Delivery& d : deliveries_) {
    pickup += rng.Exponential(rate_per_sec);
    double longest = 0.0;
    for (const AssignmentRecord& rec : d.assignments) {
      longest = std::max(longest, rec.duration_seconds);
    }
    d.arrival_seconds = pickup + longest;
  }
  std::stable_sort(deliveries_.begin(), deliveries_.end(),
                   [](const Delivery& a, const Delivery& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  next_delivery_ = 0;
  ticket_outstanding_ = true;
  drain_ = false;
  return ticket_;
}

Result<VoteBatch> AsyncCrowdBackend::Poll(Ticket ticket) {
  if (!ticket_outstanding_ || ticket != ticket_) {
    return Status::InvalidArgument("Poll for unknown ticket " + std::to_string(ticket));
  }
  VoteBatch out;
  const size_t take = drain_ ? deliveries_.size() - next_delivery_
                             : std::min<size_t>(options_.hits_per_poll,
                                                deliveries_.size() - next_delivery_);
  out.hit_votes.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    Delivery& d = deliveries_[next_delivery_++];
    out.hit_votes.push_back(std::move(d.votes));
    for (AssignmentRecord& rec : d.assignments) out.assignments.push_back(std::move(rec));
  }
  out.complete = next_delivery_ >= deliveries_.size();
  if (out.complete) {
    ticket_outstanding_ = false;
    deliveries_.clear();
    ++ticket_;
  }
  return out;
}

Status AsyncCrowdBackend::Drain() {
  drain_ = true;
  return Status::OK();
}

Result<CrowdRunResult> AsyncCrowdBackend::Finish() {
  if (ticket_outstanding_) {
    return Status::InvalidArgument(
        "Finish with undelivered votes outstanding (poll until complete, or Drain first)");
  }
  return inner_->Finish();
}

}  // namespace crowd
}  // namespace crowder
