#include "crowd/platform.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace crowder {
namespace crowd {

namespace {

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

// Deterministic per-pair hardness draw in [0,1): the same pair is equally
// confusing for every worker and every run, which is what makes replication
// imperfect insurance (as on the real platform).
double PairHardness(uint32_t a, uint32_t b) {
  uint64_t state = PairKey(a, b) ^ 0xCB0BDE12E5550AALL;
  return static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

CrowdPlatform::CrowdPlatform(const CrowdModel& model, uint64_t seed)
    : model_(model), rng_(seed) {
  workers_ = MakeWorkerPool(model_, &rng_);
  if (model_.qualification_test) {
    // The test pairs are two clear matches/non-matches and one moderately
    // ambiguous pair: spammers coin-flip all of them and rarely pass;
    // honest workers nearly always do.
    std::vector<bool> truths;
    std::vector<double> likelihoods;
    for (uint32_t i = 0; i < model_.qualification_pairs; ++i) {
      truths.push_back(i % 2 == 0);
      likelihoods.push_back(i + 1 == model_.qualification_pairs ? 0.55 : (i % 2 == 0 ? 0.9 : 0.05));
    }
    for (Worker& w : workers_) {
      if (w.TakeQualificationTest(truths, likelihoods, model_)) {
        eligible_.push_back(w.id());
      }
    }
  } else {
    for (const Worker& w : workers_) eligible_.push_back(w.id());
  }
}

Status CrowdPlatform::Validate(const CrowdContext& context) const {
  if (context.pairs == nullptr || context.entity_of == nullptr) {
    return Status::InvalidArgument("CrowdContext pairs/entity_of must be set");
  }
  if (eligible_.size() < model_.assignments_per_hit) {
    return Status::Infeasible("only " + std::to_string(eligible_.size()) +
                              " eligible workers; need " +
                              std::to_string(model_.assignments_per_hit) +
                              " distinct workers per HIT");
  }
  for (const auto& p : *context.pairs) {
    if (p.a >= context.entity_of->size() || p.b >= context.entity_of->size()) {
      return Status::OutOfRange("pair references record beyond entity_of");
    }
  }
  return Status::OK();
}

std::vector<uint32_t> CrowdPlatform::PickWorkers(uint32_t count) {
  std::vector<size_t> picks =
      rng_.SampleWithoutReplacement(eligible_.size(), std::min<size_t>(count, eligible_.size()));
  std::vector<uint32_t> out;
  out.reserve(picks.size());
  for (size_t p : picks) out.push_back(eligible_[p]);
  return out;
}

double CrowdPlatform::SimulateCompletion(const std::vector<uint32_t>& hit_of_assignment,
                                         const std::vector<double>& durations,
                                         double visible_items, bool cluster_interface) {
  if (durations.empty()) return 0.0;
  const double familiarity =
      cluster_interface ? model_.familiarity_cluster : model_.familiarity_pair;
  double rate_per_min = model_.base_arrival_per_minute * familiarity *
                        std::exp(-visible_items / model_.effort_scale);
  if (model_.qualification_test) rate_per_min *= model_.qualification_arrival_factor;
  rate_per_min = std::max(rate_per_min, 1e-3);
  const double rate_per_sec = rate_per_min / 60.0;

  // Event simulation: workers arrive Poisson(rate); a free worker takes the
  // next assignment whose HIT they have not already done. Arrived workers
  // are reused (min-heap on free time).
  struct Sim {
    double free_at;
    uint32_t sim_id;
  };
  auto cmp = [](const Sim& a, const Sim& b) { return a.free_at > b.free_at; };
  std::priority_queue<Sim, std::vector<Sim>, decltype(cmp)> free_workers(cmp);
  std::unordered_map<uint32_t, std::vector<uint32_t>> done_hits;  // sim worker -> hits

  double next_arrival = rng_.Exponential(rate_per_sec);
  uint32_t arrived = 0;
  double makespan = 0.0;

  for (size_t i = 0; i < durations.size(); ++i) {
    const uint32_t hit = hit_of_assignment[i];
    // Collect candidates until one can legally take this assignment.
    std::vector<Sim> rejected;
    bool assigned = false;
    while (!assigned) {
      Sim cand{};
      const bool heap_has = !free_workers.empty();
      if (heap_has && free_workers.top().free_at <= next_arrival) {
        cand = free_workers.top();
        free_workers.pop();
      } else {
        cand = Sim{next_arrival, arrived++};
        next_arrival += rng_.Exponential(rate_per_sec);
      }
      auto& done = done_hits[cand.sim_id];
      if (std::find(done.begin(), done.end(), hit) != done.end()) {
        rejected.push_back(cand);  // AMT: distinct workers per HIT
        continue;
      }
      const double finish = cand.free_at + durations[i];
      makespan = std::max(makespan, finish);
      done.push_back(hit);
      free_workers.push(Sim{finish, cand.sim_id});
      assigned = true;
    }
    for (const Sim& r : rejected) free_workers.push(r);
  }
  return makespan;
}

Result<CrowdRunResult> CrowdPlatform::RunPairHits(const std::vector<hitgen::PairBasedHit>& hits,
                                                  const CrowdContext& context) {
  CROWDER_RETURN_NOT_OK(Validate(context));
  const auto& pairs = *context.pairs;
  const auto& entity_of = *context.entity_of;

  // Map (a,b) -> pair index for vote alignment.
  std::unordered_map<uint64_t, size_t> pair_index;
  for (size_t i = 0; i < pairs.size(); ++i) pair_index[PairKey(pairs[i].a, pairs[i].b)] = i;

  CrowdRunResult result;
  result.votes.assign(pairs.size(), {});
  result.num_hits = static_cast<uint32_t>(hits.size());

  std::vector<uint32_t> hit_of_assignment;
  std::vector<char> worker_used(workers_.size(), 0);
  double total_visible = 0.0;

  for (uint32_t h = 0; h < hits.size(); ++h) {
    const auto& hit = hits[h];
    total_visible += static_cast<double>(hit.pairs.size());
    const std::vector<uint32_t> assignees = PickWorkers(model_.assignments_per_hit);
    for (uint32_t wid : assignees) {
      Worker& worker = workers_[wid];
      worker_used[wid] = 1;
      if (worker.is_spammer()) ++result.num_spammer_assignments;
      uint64_t comparisons = 0;
      for (const graph::Edge& e : hit.pairs) {
        const auto it = pair_index.find(PairKey(e.a, e.b));
        if (it == pair_index.end()) {
          return Status::InvalidArgument("pair HIT contains pair (" + std::to_string(e.a) + "," +
                                         std::to_string(e.b) + ") not in the candidate set");
        }
        const bool truth = entity_of[e.a] == entity_of[e.b];
        const bool vote = worker.AnswerPair(truth, pairs[it->second].score,
                                            PairHardness(e.a, e.b), model_);
        result.votes[it->second].push_back({wid, vote});
        ++comparisons;
      }
      result.total_comparisons += comparisons;
      const double duration =
          model_.base_seconds + model_.pair_comparison_seconds *
                                    static_cast<double>(comparisons) * worker.speed_factor();
      result.assignment_seconds.push_back(duration);
      result.assignments.push_back(
          {h, wid, duration, comparisons, worker.is_spammer()});
      hit_of_assignment.push_back(h);
    }
  }

  result.num_assignments = static_cast<uint32_t>(result.assignment_seconds.size());
  result.cost_dollars = result.num_assignments * model_.CostPerAssignment();
  result.median_assignment_seconds = Median(result.assignment_seconds);
  result.num_distinct_workers =
      static_cast<uint32_t>(std::count(worker_used.begin(), worker_used.end(), 1));
  const double avg_visible = hits.empty() ? 0.0 : total_visible / hits.size();
  result.total_seconds = SimulateCompletion(hit_of_assignment, result.assignment_seconds,
                                            avg_visible, /*cluster_interface=*/false);
  return result;
}

Result<CrowdRunResult> CrowdPlatform::RunClusterHits(
    const std::vector<hitgen::ClusterBasedHit>& hits, const CrowdContext& context) {
  CROWDER_RETURN_NOT_OK(Validate(context));
  const auto& pairs = *context.pairs;
  const auto& entity_of = *context.entity_of;

  std::unordered_map<uint64_t, size_t> pair_index;
  for (size_t i = 0; i < pairs.size(); ++i) pair_index[PairKey(pairs[i].a, pairs[i].b)] = i;
  auto likelihood_of = [&](uint32_t a, uint32_t b) {
    const auto it = pair_index.find(PairKey(a, b));
    // Pairs inside a HIT that are not candidates were pruned as dissimilar;
    // they are easy "no" decisions.
    return it == pair_index.end() ? 0.0 : pairs[it->second].score;
  };

  CrowdRunResult result;
  result.votes.assign(pairs.size(), {});
  result.num_hits = static_cast<uint32_t>(hits.size());

  std::vector<uint32_t> hit_of_assignment;
  std::vector<char> worker_used(workers_.size(), 0);
  double total_visible = 0.0;

  for (uint32_t h = 0; h < hits.size(); ++h) {
    const auto& hit = hits[h];
    total_visible += static_cast<double>(hit.records.size());
    const std::vector<uint32_t> assignees = PickWorkers(model_.assignments_per_hit);
    for (uint32_t wid : assignees) {
      Worker& worker = workers_[wid];
      worker_used[wid] = 1;
      if (worker.is_spammer()) ++result.num_spammer_assignments;

      // The §6 labelling procedure: repeatedly seed a new entity with the
      // first unlabelled record and compare it against the remaining
      // unlabelled records; a "same" verdict absorbs the record (and it is
      // never compared again), so one early error propagates — exactly the
      // behaviour of the colour-labelling interface.
      const size_t n = hit.records.size();
      std::vector<int> label(n, -1);
      int next_label = 0;
      uint64_t comparisons = 0;
      for (size_t i = 0; i < n; ++i) {
        if (label[i] >= 0) continue;
        label[i] = next_label;
        for (size_t j = i + 1; j < n; ++j) {
          if (label[j] >= 0) continue;
          const uint32_t ra = hit.records[i];
          const uint32_t rb = hit.records[j];
          const bool truth = entity_of[ra] == entity_of[rb];
          const bool same =
              worker.AnswerPair(truth, likelihood_of(ra, rb), PairHardness(ra, rb), model_);
          ++comparisons;
          if (same) label[j] = next_label;
        }
        ++next_label;
      }
      // Derive pairwise votes for the candidate pairs inside the HIT.
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          const auto it = pair_index.find(PairKey(hit.records[i], hit.records[j]));
          if (it == pair_index.end()) continue;
          result.votes[it->second].push_back({wid, label[i] == label[j]});
        }
      }
      result.total_comparisons += comparisons;
      const double duration =
          model_.base_seconds + model_.cluster_comparison_seconds *
                                    static_cast<double>(comparisons) * worker.speed_factor();
      result.assignment_seconds.push_back(duration);
      result.assignments.push_back(
          {h, wid, duration, comparisons, worker.is_spammer()});
      hit_of_assignment.push_back(h);
    }
  }

  result.num_assignments = static_cast<uint32_t>(result.assignment_seconds.size());
  result.cost_dollars = result.num_assignments * model_.CostPerAssignment();
  result.median_assignment_seconds = Median(result.assignment_seconds);
  result.num_distinct_workers =
      static_cast<uint32_t>(std::count(worker_used.begin(), worker_used.end(), 1));
  const double avg_visible = hits.empty() ? 0.0 : total_visible / hits.size();
  result.total_seconds = SimulateCompletion(hit_of_assignment, result.assignment_seconds,
                                            avg_visible, /*cluster_interface=*/true);
  return result;
}

}  // namespace crowd
}  // namespace crowder
