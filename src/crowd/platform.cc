#include "crowd/platform.h"

#include "crowd/session.h"

namespace crowder {
namespace crowd {

CrowdPlatform::CrowdPlatform(const CrowdModel& model, uint64_t seed)
    : model_(model), seed_(seed) {
  // The pool (types, speeds, per-worker streams) and the qualification gate
  // are built from a dedicated stream so they depend only on (model, seed).
  Rng rng(seed);
  workers_ = MakeWorkerPool(model_, &rng);
  if (model_.qualification_test) {
    // The test pairs are two clear matches/non-matches and one moderately
    // ambiguous pair: spammers coin-flip all of them and rarely pass;
    // honest workers nearly always do.
    std::vector<bool> truths;
    std::vector<double> likelihoods;
    for (uint32_t i = 0; i < model_.qualification_pairs; ++i) {
      truths.push_back(i % 2 == 0);
      likelihoods.push_back(i + 1 == model_.qualification_pairs ? 0.55 : (i % 2 == 0 ? 0.9 : 0.05));
    }
    for (Worker& w : workers_) {
      if (w.TakeQualificationTest(truths, likelihoods, model_)) {
        eligible_.push_back(w.id());
      }
    }
  } else {
    for (const Worker& w : workers_) eligible_.push_back(w.id());
  }
}

Result<CrowdRunResult> CrowdPlatform::RunPairHits(const std::vector<hitgen::PairBasedHit>& hits,
                                                  const CrowdContext& context) const {
  CROWDER_ASSIGN_OR_RETURN(auto session, CrowdSession::Create(*this, context));
  CROWDER_RETURN_NOT_OK(session->ProcessPairHits(hits));
  return session->Finish();
}

Result<CrowdRunResult> CrowdPlatform::RunClusterHits(
    const std::vector<hitgen::ClusterBasedHit>& hits, const CrowdContext& context) const {
  CROWDER_ASSIGN_OR_RETURN(auto session, CrowdSession::Create(*this, context));
  CROWDER_RETURN_NOT_OK(session->ProcessClusterHits(hits));
  return session->Finish();
}

}  // namespace crowd
}  // namespace crowder
