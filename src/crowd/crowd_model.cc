#include "crowd/crowd_model.h"

#include <string>

namespace crowder {
namespace crowd {

namespace {

// A fraction/rate must be a real number in [0, 1]. The negated comparison
// catches NaN (which compares false against everything) as out-of-range.
Status CheckUnitInterval(const char* field, double value) {
  if (!(value >= 0.0) || !(value <= 1.0)) {
    return Status::InvalidArgument(std::string(field) + " must be in [0, 1]; got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

}  // namespace

Status ValidateCrowdModel(const CrowdModel& model) {
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("reliable_fraction", model.reliable_fraction));
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("noisy_fraction", model.noisy_fraction));
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("colluder_fraction", model.colluder_fraction));
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("sleeper_fraction", model.sleeper_fraction));
  const double sum = model.reliable_fraction + model.noisy_fraction + model.colluder_fraction +
                     model.sleeper_fraction;
  if (sum > 1.0 + 1e-12) {
    return Status::InvalidArgument(
        "worker-type fractions (reliable_fraction + noisy_fraction + colluder_fraction + "
        "sleeper_fraction) must sum to <= 1; got " +
        std::to_string(sum));
  }
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("spammer_yes_rate", model.spammer_yes_rate));
  CROWDER_RETURN_NOT_OK(CheckUnitInterval("colluder_yes_rate", model.colluder_yes_rate));
  if (model.colluder_fraction > 0.0 && model.colluder_rings == 0) {
    return Status::InvalidArgument("colluder_rings must be >= 1 when colluder_fraction > 0");
  }
  return Status::OK();
}

}  // namespace crowd
}  // namespace crowder
