#include "crowd/session.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "crowd/backend.h"  // the shared PairKey normalization
#include "exec/parallel.h"

namespace crowder {
namespace crowd {

double PairHardness(uint32_t a, uint32_t b) {
  uint64_t state = PairKey(a, b) ^ 0xCB0BDE12E5550AALL;
  return static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
}

std::vector<uint32_t> PickWorkersFrom(const std::vector<uint32_t>& eligible, uint32_t count,
                                      Rng* rng) {
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(eligible.size(), std::min<size_t>(count, eligible.size()));
  std::vector<uint32_t> out;
  out.reserve(picks.size());
  for (size_t p : picks) out.push_back(eligible[p]);
  return out;
}

namespace {

// Salt for the completion simulation's stream — outside the HIT index range.
constexpr uint64_t kCompletionSalt = ~0ULL;

// Poisson-arrival dispatch of assignments; returns makespan seconds.
double SimulateCompletion(const CrowdModel& model, Rng* rng,
                          const std::vector<uint32_t>& hit_of_assignment,
                          const std::vector<double>& durations, double visible_items,
                          bool cluster_interface) {
  if (durations.empty()) return 0.0;
  const double familiarity =
      cluster_interface ? model.familiarity_cluster : model.familiarity_pair;
  double rate_per_min = model.base_arrival_per_minute * familiarity *
                        std::exp(-visible_items / model.effort_scale);
  if (model.qualification_test) rate_per_min *= model.qualification_arrival_factor;
  rate_per_min = std::max(rate_per_min, 1e-3);
  const double rate_per_sec = rate_per_min / 60.0;

  // Event simulation: workers arrive Poisson(rate); a free worker takes the
  // next assignment whose HIT they have not already done. Arrived workers
  // are reused (min-heap on free time).
  struct Sim {
    double free_at;
    uint32_t sim_id;
  };
  auto cmp = [](const Sim& a, const Sim& b) { return a.free_at > b.free_at; };
  std::priority_queue<Sim, std::vector<Sim>, decltype(cmp)> free_workers(cmp);
  std::unordered_map<uint32_t, std::vector<uint32_t>> done_hits;  // sim worker -> hits

  double next_arrival = rng->Exponential(rate_per_sec);
  uint32_t arrived = 0;
  double makespan = 0.0;

  for (size_t i = 0; i < durations.size(); ++i) {
    const uint32_t hit = hit_of_assignment[i];
    // Collect candidates until one can legally take this assignment.
    std::vector<Sim> rejected;
    bool assigned = false;
    while (!assigned) {
      Sim cand{};
      const bool heap_has = !free_workers.empty();
      if (heap_has && free_workers.top().free_at <= next_arrival) {
        cand = free_workers.top();
        free_workers.pop();
      } else {
        cand = Sim{next_arrival, arrived++};
        next_arrival += rng->Exponential(rate_per_sec);
      }
      auto& done = done_hits[cand.sim_id];
      if (std::find(done.begin(), done.end(), hit) != done.end()) {
        rejected.push_back(cand);  // AMT: distinct workers per HIT
        continue;
      }
      const double finish = cand.free_at + durations[i];
      makespan = std::max(makespan, finish);
      done.push_back(hit);
      free_workers.push(Sim{finish, cand.sim_id});
      assigned = true;
    }
    for (const Sim& r : rejected) free_workers.push(r);
  }
  return makespan;
}

}  // namespace

Rng DeriveRng(uint64_t seed, uint64_t salt) {
  // Two SplitMix64 rounds over a multiplicatively-salted seed: enough mixing
  // that adjacent HIT indices give unrelated xoshiro states.
  uint64_t state = seed ^ ((salt + 1) * 0x9E3779B97F4A7C15ULL);
  SplitMix64(&state);
  return Rng(SplitMix64(&state));
}

namespace {

// Shared worker-pool feasibility check for both Create shapes. Model
// validation lives here too: the platform constructor cannot return a
// Status, so a malformed model (negative fractions, sum > 1) is caught the
// moment a session tries to use the pool it produced.
Status ValidatePool(const CrowdPlatform& platform) {
  CROWDER_RETURN_NOT_OK(ValidateCrowdModel(platform.model()));
  if (platform.eligible_workers().size() < platform.model().assignments_per_hit) {
    return Status::Infeasible("only " + std::to_string(platform.eligible_workers().size()) +
                              " eligible workers; need " +
                              std::to_string(platform.model().assignments_per_hit) +
                              " distinct workers per HIT");
  }
  return Status::OK();
}

// Every pair must reference a record the ground truth knows about.
Status ValidatePairBounds(const std::vector<similarity::ScoredPair>& pairs,
                          const std::vector<uint32_t>& entity_of) {
  for (const auto& p : pairs) {
    if (p.a >= entity_of.size() || p.b >= entity_of.size()) {
      return Status::OutOfRange("pair references record beyond entity_of");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<CrowdSession>> CrowdSession::Create(const CrowdPlatform& platform,
                                                           const CrowdContext& context,
                                                           uint32_t num_threads) {
  if (context.pairs == nullptr || context.entity_of == nullptr) {
    return Status::InvalidArgument("CrowdContext pairs/entity_of must be set");
  }
  CROWDER_RETURN_NOT_OK(ValidatePool(platform));
  CROWDER_RETURN_NOT_OK(ValidatePairBounds(*context.pairs, *context.entity_of));
  auto session =
      std::unique_ptr<CrowdSession>(new CrowdSession(platform, context, num_threads));
  // Classic shape: the whole run is one implicit, already-open partition.
  session->partition_open_ = true;
  return session;
}

Result<std::unique_ptr<CrowdSession>> CrowdSession::CreatePartitioned(
    const CrowdPlatform& platform, const std::vector<uint32_t>& entity_of,
    uint32_t num_threads, bool capture_responses) {
  CROWDER_RETURN_NOT_OK(ValidatePool(platform));
  CrowdContext context;
  context.pairs = nullptr;  // installed by StartPartition
  context.entity_of = &entity_of;
  auto session =
      std::unique_ptr<CrowdSession>(new CrowdSession(platform, context, num_threads));
  session->capture_responses_ = capture_responses;
  return session;
}

CrowdSession::CrowdSession(const CrowdPlatform& platform, const CrowdContext& context,
                           uint32_t num_threads)
    : platform_(platform), context_(context) {
  if (context_.pairs != nullptr) {
    const auto& pairs = *context_.pairs;
    pair_index_.reserve(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) pair_index_[PairKey(pairs[i].a, pairs[i].b)] = i;
    result_.votes.assign(pairs.size(), {});
  }
  worker_used_.assign(platform_.workers().size(), 0);
  const uint32_t threads = exec::ResolveNumThreads(num_threads);
  // The caller participates in draining chunks (exec/parallel.h), so the
  // pool supplies threads - 1 workers.
  if (threads > 1) pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
}

Status CrowdSession::StartPartition(const std::vector<similarity::ScoredPair>& pairs) {
  CROWDER_CHECK(!finished_) << "StartPartition after Finish";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  if (partition_open_) {
    return Status::InvalidArgument(
        "StartPartition before the previous partition's votes were taken");
  }
  CROWDER_RETURN_NOT_OK(ValidatePairBounds(pairs, *context_.entity_of));
  context_.pairs = &pairs;
  pair_index_.clear();
  pair_index_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) pair_index_[PairKey(pairs[i].a, pairs[i].b)] = i;
  // Capture mode keeps votes per HIT instead; building the per-pair table
  // too would file every vote twice just to throw one copy away.
  if (capture_responses_) {
    result_.votes.clear();
  } else {
    result_.votes.assign(pairs.size(), {});
  }
  hit_responses_.clear();
  partition_assignment_begin_ = result_.assignments.size();
  partition_open_ = true;
  return Status::OK();
}

Result<aggregate::VoteTable> CrowdSession::TakePartitionVotes() {
  CROWDER_CHECK(!finished_) << "TakePartitionVotes after Finish";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  if (capture_responses_) {
    return Status::InvalidArgument(
        "session captures per-HIT responses; use TakePartitionResponses");
  }
  if (!partition_open_) return Status::InvalidArgument("no open partition to take votes from");
  aggregate::VoteTable votes = std::move(result_.votes);
  result_.votes.clear();
  partition_open_ = false;
  return votes;
}

Result<CrowdSession::PartitionResponses> CrowdSession::TakePartitionResponses() {
  CROWDER_CHECK(!finished_) << "TakePartitionResponses after Finish";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  if (!capture_responses_) {
    return Status::InvalidArgument(
        "TakePartitionResponses requires CreatePartitioned(capture_responses = true)");
  }
  if (!partition_open_) return Status::InvalidArgument("no open partition to take responses from");
  PartitionResponses responses;
  responses.hits = std::move(hit_responses_);
  hit_responses_.clear();
  responses.assignments.assign(result_.assignments.begin() + partition_assignment_begin_,
                               result_.assignments.end());
  partition_open_ = false;
  return responses;
}

CrowdSession::HitOutcome CrowdSession::SimulatePairHit(uint32_t hit_index,
                                                       const hitgen::PairBasedHit& hit) const {
  const auto& pairs = *context_.pairs;
  const auto& entity_of = *context_.entity_of;
  const CrowdModel& model = platform_.model();

  HitOutcome out;
  out.visible_items = static_cast<double>(hit.pairs.size());
  Rng rng = DeriveRng(platform_.seed(), hit_index);
  const std::vector<uint32_t> assignees =
      PickWorkersFrom(platform_.eligible_workers(), model.assignments_per_hit, &rng);
  for (uint32_t wid : assignees) {
    const Worker& worker = platform_.workers()[wid];
    uint64_t comparisons = 0;
    for (const graph::Edge& e : hit.pairs) {
      const auto it = pair_index_.find(PairKey(e.a, e.b));
      if (it == pair_index_.end()) {
        out.status = Status::InvalidArgument("pair HIT contains pair (" + std::to_string(e.a) +
                                             "," + std::to_string(e.b) +
                                             ") not in the candidate set");
        return out;
      }
      const bool truth = entity_of[e.a] == entity_of[e.b];
      const bool vote = worker.AnswerPairWith(&rng, truth, pairs[it->second].score,
                                              PairHardness(e.a, e.b), model);
      out.votes.push_back({it->second, {wid, vote}});
      ++comparisons;
    }
    const double duration =
        model.base_seconds + model.pair_comparison_seconds *
                                 static_cast<double>(comparisons) * worker.speed_factor();
    out.assignments.push_back({hit_index, wid, duration, comparisons, worker.is_adversarial()});
  }
  return out;
}

CrowdSession::HitOutcome CrowdSession::SimulateClusterHit(
    uint32_t hit_index, const hitgen::ClusterBasedHit& hit) const {
  const auto& pairs = *context_.pairs;
  const auto& entity_of = *context_.entity_of;
  const CrowdModel& model = platform_.model();
  auto likelihood_of = [&](uint32_t a, uint32_t b) {
    const auto it = pair_index_.find(PairKey(a, b));
    // Pairs inside a HIT that are not candidates were pruned as dissimilar;
    // they are easy "no" decisions.
    return it == pair_index_.end() ? 0.0 : pairs[it->second].score;
  };

  HitOutcome out;
  out.visible_items = static_cast<double>(hit.records.size());
  Rng rng = DeriveRng(platform_.seed(), hit_index);
  const std::vector<uint32_t> assignees =
      PickWorkersFrom(platform_.eligible_workers(), model.assignments_per_hit, &rng);
  for (uint32_t wid : assignees) {
    const Worker& worker = platform_.workers()[wid];

    // The §6 labelling procedure: repeatedly seed a new entity with the
    // first unlabelled record and compare it against the remaining
    // unlabelled records; a "same" verdict absorbs the record (and it is
    // never compared again), so one early error propagates — exactly the
    // behaviour of the colour-labelling interface.
    const size_t n = hit.records.size();
    std::vector<int> label(n, -1);
    int next_label = 0;
    uint64_t comparisons = 0;
    for (size_t i = 0; i < n; ++i) {
      if (label[i] >= 0) continue;
      label[i] = next_label;
      for (size_t j = i + 1; j < n; ++j) {
        if (label[j] >= 0) continue;
        const uint32_t ra = hit.records[i];
        const uint32_t rb = hit.records[j];
        const bool truth = entity_of[ra] == entity_of[rb];
        const bool same = worker.AnswerPairWith(&rng, truth, likelihood_of(ra, rb),
                                                PairHardness(ra, rb), model);
        ++comparisons;
        if (same) label[j] = next_label;
      }
      ++next_label;
    }
    // Derive pairwise votes for the candidate pairs inside the HIT.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const auto it = pair_index_.find(PairKey(hit.records[i], hit.records[j]));
        if (it == pair_index_.end()) continue;
        out.votes.push_back({it->second, {wid, label[i] == label[j]}});
      }
    }
    const double duration =
        model.base_seconds + model.cluster_comparison_seconds *
                                 static_cast<double>(comparisons) * worker.speed_factor();
    out.assignments.push_back({hit_index, wid, duration, comparisons, worker.is_adversarial()});
  }
  return out;
}

Status CrowdSession::MergeOutcomes(std::vector<HitOutcome>&& outcomes) {
  for (HitOutcome& out : outcomes) {
    if (!out.status.ok()) {
      // Poison the session: a batch prefix may already be merged, so letting
      // the caller retry or continue would double-count those HITs.
      failed_ = true;
      return out.status;
    }
    total_visible_ += out.visible_items;
    if (capture_responses_) {
      hit_responses_.push_back({next_hit_, std::move(out.votes)});
    } else {
      for (auto& [pair_idx, vote] : out.votes) result_.votes[pair_idx].push_back(vote);
    }
    for (const AssignmentRecord& rec : out.assignments) {
      worker_used_[rec.worker] = 1;
      if (rec.by_spammer) ++result_.num_spammer_assignments;
      result_.total_comparisons += rec.comparisons;
      result_.assignment_seconds.push_back(rec.duration_seconds);
      hit_of_assignment_.push_back(rec.hit);
      result_.assignments.push_back(rec);
    }
    ++next_hit_;
  }
  return Status::OK();
}

Status CrowdSession::ProcessPairHits(const std::vector<hitgen::PairBasedHit>& batch) {
  CROWDER_CHECK(!finished_) << "ProcessPairHits after Finish";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  if (!partition_open_) {
    return Status::InvalidArgument("ProcessPairHits without an open partition");
  }
  if (batch.empty()) return Status::OK();  // don't lock the HIT type on nothing
  if (type_fixed_ && cluster_interface_) {
    return Status::InvalidArgument("session already carries cluster-based HITs");
  }
  type_fixed_ = true;
  cluster_interface_ = false;
  const uint32_t base = next_hit_;
  std::vector<HitOutcome> outcomes = exec::ParallelMap<HitOutcome>(
      pool_.get(), batch.size(), /*chunk_size=*/1,
      [&](size_t i) { return SimulatePairHit(base + static_cast<uint32_t>(i), batch[i]); });
  return MergeOutcomes(std::move(outcomes));
}

Status CrowdSession::ProcessClusterHits(const std::vector<hitgen::ClusterBasedHit>& batch) {
  CROWDER_CHECK(!finished_) << "ProcessClusterHits after Finish";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  if (!partition_open_) {
    return Status::InvalidArgument("ProcessClusterHits without an open partition");
  }
  if (batch.empty()) return Status::OK();  // don't lock the HIT type on nothing
  if (type_fixed_ && !cluster_interface_) {
    return Status::InvalidArgument("session already carries pair-based HITs");
  }
  type_fixed_ = true;
  cluster_interface_ = true;
  const uint32_t base = next_hit_;
  std::vector<HitOutcome> outcomes = exec::ParallelMap<HitOutcome>(
      pool_.get(), batch.size(), /*chunk_size=*/1,
      [&](size_t i) { return SimulateClusterHit(base + static_cast<uint32_t>(i), batch[i]); });
  return MergeOutcomes(std::move(outcomes));
}

Result<CrowdRunResult> CrowdSession::Finish() {
  CROWDER_CHECK(!finished_) << "Finish called twice";
  if (failed_) return Status::InvalidArgument("CrowdSession already failed");
  finished_ = true;
  result_.num_hits = next_hit_;
  result_.num_assignments = static_cast<uint32_t>(result_.assignment_seconds.size());
  result_.cost_dollars = result_.num_assignments * platform_.model().CostPerAssignment();
  result_.median_assignment_seconds = AssignmentMedianSeconds(result_.assignment_seconds);
  result_.num_distinct_workers =
      static_cast<uint32_t>(std::count(worker_used_.begin(), worker_used_.end(), 1));
  const double avg_visible =
      next_hit_ == 0 ? 0.0 : total_visible_ / static_cast<double>(next_hit_);
  Rng completion_rng = DeriveRng(platform_.seed(), kCompletionSalt);
  result_.total_seconds =
      SimulateCompletion(platform_.model(), &completion_rng, hit_of_assignment_,
                         result_.assignment_seconds, avg_visible, cluster_interface_);
  return std::move(result_);
}

}  // namespace crowd
}  // namespace crowder
