// All behavioural assumptions of the simulated crowd in one struct, so every
// experiment states them explicitly and ablations can sweep them.
//
// The real paper ran Amazon Mechanical Turk (§7.1): $0.02/HIT + $0.005 fee,
// three assignments per HIT by distinct workers, an optional 3-pair
// qualification test, and observed (a) spammers, (b) per-assignment times
// driven by comparison counts (Fig 13), (c) total completion driven by how
// many workers a HIT type attracts (Fig 14). The defaults below are
// calibrated so those mechanisms reproduce the paper's curve shapes; see
// EXPERIMENTS.md for paper-vs-measured numbers.
#ifndef CROWDER_CROWD_CROWD_MODEL_H_
#define CROWDER_CROWD_CROWD_MODEL_H_

#include <cstdint>

#include "common/status.h"

namespace crowder {
namespace crowd {

struct CrowdModel {
  // ---- Replication & payment (matches §7.1 exactly). ----
  uint32_t assignments_per_hit = 3;
  double payment_per_assignment = 0.02;
  double fee_per_assignment = 0.005;

  // ---- Worker pool composition. ----
  uint32_t pool_size = 150;
  double reliable_fraction = 0.66;
  double noisy_fraction = 0.26;  ///< remainder are spammers

  // ---- Honest-worker error model. ----
  /// People are good at exactly the pairs machines find ambiguous — that is
  /// the paper's premise — so human difficulty is NOT the machine
  /// likelihood. Instead each pair has an intrinsic hardness u ∈ [0,1]
  /// (deterministic per pair, shared by all workers, so genuinely confusing
  /// pairs stay confusing under replication):
  ///   P(error) = base_error + hard_pair_gain * u^hardness_exponent * trend
  /// where trend = (1 - likelihood)^2 for true matches (only matches whose
  /// records barely overlap textually are hard to spot) and likelihood^2
  /// for non-matches (only strong lookalikes are hard to reject); capped at
  /// 0.5. The squared trends keep moderately-similar pairs — the bulk of
  /// what the machine pass forwards — easy for honest workers, matching the
  /// accuracy the paper observed on AMT.
  double reliable_base_error = 0.01;
  double noisy_base_error = 0.04;
  double hard_pair_gain = 0.25;
  double hardness_exponent = 2.0;

  // ---- Spammer behaviour. ----
  /// Spammers answer yes with this probability, independent of the records.
  double spammer_yes_rate = 0.55;

  // ---- Adversarial archetypes (default off). ----
  /// Colluding spammer rings: every member of a ring casts the *same* vote
  /// on a given pair (a shared deterministic yes/no policy), so replication
  /// cannot average them out the way it averages independent spammers.
  /// Fraction 0 keeps the default pool bitwise identical to the pre-
  /// adversarial model (the bucketing thresholds collapse and no extra
  /// random draws are consumed).
  double colluder_fraction = 0.0;
  /// Number of independent rings the colluders are split across (round-robin
  /// by worker id). Each ring has its own policy seed.
  uint32_t colluder_rings = 3;
  /// Marginal yes-rate of a ring's policy across pairs.
  double colluder_yes_rate = 0.7;
  /// Sleeper workers ace the qualification test, then answer real pairs
  /// like spammers (yes with spammer_yes_rate). They model the §7.1
  /// observation that a gate only filters workers at admission time.
  double sleeper_fraction = 0.0;

  // ---- Qualification test (§7.1). ----
  bool qualification_test = false;
  /// The test has this many pairs; a worker must answer all correctly.
  uint32_t qualification_pairs = 3;
  /// Rate multiplier on worker arrivals when a test gates participation.
  /// Makespan grows ~ 1/sqrt(factor) under the arrival model, so 0.06 gives
  /// the ~4x total-latency penalty the paper observed (4.5h -> 19.9h on
  /// Product with QT enabled).
  double qualification_arrival_factor = 0.06;

  // ---- Per-assignment time model (Fig 13). ----
  /// duration = base + per-comparison seconds * comparisons * worker speed.
  double base_seconds = 15.0;
  double pair_comparison_seconds = 3.5;
  /// The cluster interface (sortable table, drag-and-drop) makes one
  /// comparison much cheaper than reading a fresh record pair.
  double cluster_comparison_seconds = 1.0;
  /// Worker speed multiplier is lognormal-ish: exp(N(0, speed_sigma)).
  double speed_sigma = 0.25;

  // ---- Worker arrival / attraction model (Fig 14). ----
  /// Worker arrivals form a Poisson process with rate
  ///   base_arrival_per_minute * familiarity * exp(-visible_items /
  ///   effort_scale)
  /// where visible_items = pairs in a pair HIT, records in a cluster HIT.
  /// The paper explains Fig 14 by pair HITs attracting more workers
  /// (familiar interface) unless the batches grow too large (P28).
  double base_arrival_per_minute = 3.0;
  double familiarity_pair = 1.0;
  double familiarity_cluster = 0.5;
  double effort_scale = 25.0;

  double CostPerAssignment() const { return payment_per_assignment + fee_per_assignment; }
};

/// \brief Checks the model's fractions and rates, naming the offending field.
/// Out-of-range fractions are not harmless: reliable_fraction +
/// noisy_fraction > 1 silently produces zero spammers, and a negative
/// fraction inverts the bucketing in MakeWorkerPool. Called at session/pool
/// construction and from workflow-config validation.
Status ValidateCrowdModel(const CrowdModel& model);

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_CROWD_MODEL_H_
