// The defense half of the adversarial crowd model: admission filtering on
// the behavioural statistics a platform actually has — approval rate
// against the crowd's own majority and time spent working — in the shape of
// real AMT requester scripts (reject workers whose lifetime approval rate
// or work time falls below a floor).
//
// The filter is consulted by core::WorkflowDriver between rounds; a ban is
// cumulative and retroactive: every vote the banned worker ever cast is
// excluded when decisions are (re-)derived at aggregation, which is what
// makes the filter a *revision* mechanism rather than a gate — see
// docs/ARCHITECTURE.md.
#ifndef CROWDER_CROWD_WORKER_FILTER_H_
#define CROWDER_CROWD_WORKER_FILTER_H_

#include <cstdint>
#include <vector>

namespace crowder {
namespace crowd {

/// \brief Lifetime behavioural statistics of one worker, accumulated by the
/// driver across every answered round. No ground truth in here — approval
/// is measured against the per-pair majority of each round's votes, which
/// is all a real platform can observe.
struct WorkerStats {
  uint32_t worker = 0;
  /// Votes the worker cast so far.
  uint32_t num_votes = 0;
  /// Votes agreeing with the round's per-pair majority (ties count as
  /// agreement: a split pair is evidence about the pair, not the worker).
  uint32_t num_agreements = 0;
  /// Completed assignments so far.
  uint32_t num_assignments = 0;
  /// Total seconds spent across those assignments.
  double work_seconds = 0.0;

  /// \brief Agreement with the crowd majority (1.0 before any votes).
  double ApprovalRate() const {
    return num_votes == 0 ? 1.0
                          : static_cast<double>(num_agreements) / static_cast<double>(num_votes);
  }
  /// \brief Mean seconds per completed assignment (0 before any).
  double MeanAssignmentSeconds() const {
    return num_assignments == 0 ? 0.0 : work_seconds / static_cast<double>(num_assignments);
  }
};

/// \brief Pluggable between-rounds admission filter. The driver calls
/// Review after each answered round with the lifetime stats of every worker
/// seen so far (ascending worker id — determinism is the caller's
/// contract); the returned ids are banned from aggregation. Bans are
/// cumulative; returning an already-banned id is harmless.
class WorkerFilter {
 public:
  virtual ~WorkerFilter() = default;  ///< virtual for interface use

  /// \brief Returns the worker ids to ban, judged from `stats`.
  virtual std::vector<uint32_t> Review(const std::vector<WorkerStats>& stats) = 0;
};

/// \brief Thresholds for ApprovalRateWorkerFilter. Defaults mirror the
/// requester-script convention (AMT requesters routinely demand >= 95%
/// platform approval): ban well below honest-worker agreement, never judge
/// a worker before a minimum body of evidence. Honest workers agree with
/// the majority ~90%+ of the time even in a heavily adversarial pool (the
/// majority is mostly honest and the pairs are mostly easy); answer-blind
/// archetypes land in the 0.4-0.8 band, so 0.8 separates them.
struct ApprovalRateFilterOptions {
  /// Ban when ApprovalRate() falls below this.
  double min_approval_rate = 0.8;
  /// Votes required before the approval criterion applies (too few votes
  /// and an honest worker unlucky on hard pairs gets banned).
  uint32_t min_votes = 6;
  /// Ban when MeanAssignmentSeconds() falls below this (0 disables — the
  /// simulator's time model gives adversaries honest durations, but a real
  /// platform's click-through spammers are caught by exactly this floor).
  double min_assignment_seconds = 0.0;
};

/// \brief The built-in filter: bans workers whose lifetime approval rate or
/// mean work time falls below the configured floors.
class ApprovalRateWorkerFilter : public WorkerFilter {
 public:
  /// \brief Uses `options` as the ban thresholds.
  explicit ApprovalRateWorkerFilter(ApprovalRateFilterOptions options = {})
      : options_(options) {}

  std::vector<uint32_t> Review(const std::vector<WorkerStats>& stats) override;

  /// \brief The thresholds in force.
  const ApprovalRateFilterOptions& options() const { return options_; }

 private:
  ApprovalRateFilterOptions options_;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_WORKER_FILTER_H_
