/// \file
/// \brief The pluggable crowd boundary: `CrowdBackend`, the interface the
/// workflow talks to instead of a baked-in simulator.
///
/// CrowdER is a hybrid human-machine loop, but until this seam existed the
/// human half was hard-wired: `HybridWorkflow::Run` drove the built-in
/// simulator to completion and only then returned. `CrowdBackend` inverts
/// that — the workflow (via `core::WorkflowDriver`) *posts* HIT batches and
/// *polls* answers, and what sits behind the boundary is the caller's
/// choice:
///
///  * `SimulatedCrowdBackend` — the deterministic simulator
///    (crowd/session.h) behind the interface; bitwise-identical to the
///    pre-interface workflow, and able to tee every response into a
///    `VoteLogWriter` (crowd/vote_log.h) for later replay.
///  * `RecordedCrowdBackend` (crowd/vote_log.h) — replays a recorded vote
///    log, reproducing the ranked output byte for byte without simulating.
///  * `CallbackCrowdBackend` — a user-supplied function: the embedding hook
///    for tests, oracle crowds, and live platform adapters.
///
/// The protocol is deliberately small: `Post(HitBatch) -> Ticket`,
/// `Poll(Ticket) -> VoteBatch` (votes + assignment records), optional
/// `Drain()`, terminal `Finish() -> CrowdRunResult`. Synchronous backends
/// complete the work inside Post/Poll; an asynchronous adapter would return
/// from Post immediately and block (or report not-ready) in Poll.
#ifndef CROWDER_CROWD_BACKEND_H_
#define CROWDER_CROWD_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/result.h"
#include "crowd/platform.h"
#include "crowd/session.h"
#include "hitgen/hit.h"
#include "similarity/similarity_join.h"

namespace crowder {
/// \brief The crowd: worker pool simulation, crowd sessions, and the
/// pluggable CrowdBackend boundary with its vote-log record/replay.
namespace crowd {

class VoteLogWriter;  // crowd/vote_log.h

/// \brief One posted round of crowd work: a batch of HITs plus the candidate
/// pairs they reference (the round's pair context, with machine
/// likelihoods). Exactly one of `pair_hits` / `cluster_hits` is non-null.
///
/// The batch is a non-owning view: the pointed-at vectors belong to the
/// producer (core::WorkflowDriver keeps them alive until the round is
/// stepped past) and must outlive every Post/Poll call that uses the batch.
struct HitBatch {
  /// Global index of the first HIT in the batch; HIT *i* of the batch has
  /// global index `first_hit + i`.
  uint32_t first_hit = 0;
  /// The candidate pairs the batch's HITs may reference. Votes name pairs by
  /// their (a, b) record ids, which must appear in this list.
  const std::vector<similarity::ScoredPair>* pairs = nullptr;
  /// Pair-based HITs of the round (null for a cluster round).
  const std::vector<hitgen::PairBasedHit>* pair_hits = nullptr;
  /// Cluster-based HITs of the round (null for a pair round).
  const std::vector<hitgen::ClusterBasedHit>* cluster_hits = nullptr;

  /// \brief HITs in the batch.
  size_t num_hits() const {
    return (pair_hits != nullptr ? pair_hits->size() : 0) +
           (cluster_hits != nullptr ? cluster_hits->size() : 0);
  }
  /// \brief True when the batch carries no HITs.
  bool empty() const { return num_hits() == 0; }
};

/// \brief Canonical 64-bit key of an unordered record pair — min(a, b) in
/// the high word, max(a, b) in the low. The one normalization shared by
/// every component that indexes votes by record pair (the session's pair
/// index, the driver's round context, the simulator's per-pair hardness
/// draw); a single definition keeps the seam's key spaces identical.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a < b ? a : b) << 32) | (a < b ? b : a);
}

/// \brief One worker's verdict on one record pair, named by record ids (not
/// positional indices) so answers survive any transport — a live platform, a
/// JSONL log, a test callback.
struct PairVote {
  uint32_t a = 0;  ///< smaller record id of the pair
  uint32_t b = 0;  ///< larger record id of the pair
  /// The verdict (worker id + yes/no).
  aggregate::Vote vote;
};

/// \brief Everything the crowd returned for one HIT: its votes in cast
/// order. Assignment records travel separately in VoteBatch::assignments
/// (they already carry their HIT index).
struct HitVotes {
  uint32_t hit = 0;  ///< global HIT index
  /// Votes cast while answering this HIT, in cast order. Per-pair vote
  /// order is what aggregation observes, so producers must preserve it.
  std::vector<PairVote> votes;
};

/// \brief The crowd's answer to one posted HitBatch — or, for an
/// asynchronous backend, one *delivery* of it.
struct VoteBatch {
  /// Per-HIT responses. Synchronous producers emit them in global HIT
  /// order; the aggregate per-pair vote sequences (HIT order, then cast
  /// order within a HIT) are part of the byte-identity contract.
  /// Asynchronous deliveries may arrive in any order, but a HIT's votes are
  /// atomic: each HIT appears in exactly one HitVotes entry across all
  /// deliveries of a round (the driver rejects a second appearance).
  std::vector<HitVotes> hit_votes;
  /// Completed assignments of the batch, in publish order. An asynchronous
  /// delivery carries the assignments of the HITs it delivers.
  std::vector<AssignmentRecord> assignments;
  /// False when more deliveries for this ticket follow (poll again).
  /// Synchronous backends always return true; core::WorkflowDriver accepts
  /// any number of partial submissions before the completing one.
  bool complete = true;
};

/// \brief Handle for one posted HitBatch, echoed back to Poll.
using Ticket = uint64_t;

/// \brief Median of a set of assignment durations (0 when empty). Shared by
/// the stat assemblers that cannot see a platform (CallbackCrowdBackend,
/// the driver's fallback statistics).
double AssignmentMedianSeconds(std::vector<double> durations);

/// \brief The precondition every backend's Post enforces: a pair context is
/// set and exactly one of the two HIT lists is non-empty. Exposed so custom
/// backends can validate the same way the built-in ones do.
Status ValidateBatchShape(const HitBatch& batch);

/// \brief Abstract crowd. One backend instance spans one workflow run; the
/// workflow posts HIT batches in round order and polls each ticket exactly
/// once before posting the next round (the driver's shape — backends may,
/// but need not, support multiple outstanding tickets).
class CrowdBackend {
 public:
  virtual ~CrowdBackend() = default;  ///< virtual for interface use

  /// \brief Publishes one batch of HITs. The batch (and the vectors it
  /// points at) must stay alive until the ticket has been polled.
  virtual Result<Ticket> Post(const HitBatch& batch) = 0;

  /// \brief Collects the answers for `ticket`: votes (per HIT, in cast
  /// order) plus the batch's assignment records.
  virtual Result<VoteBatch> Poll(Ticket ticket) = 0;

  /// \brief Blocks until every outstanding ticket is answerable. A no-op
  /// for synchronous backends (the default); asynchronous adapters
  /// override it.
  virtual Status Drain() { return Status::OK(); }

  /// \brief Terminal: returns the run's crowd statistics (cost, latency,
  /// assignment audit trail — the `votes` table stays empty; votes were
  /// delivered through Poll). Fails if a posted ticket was never polled.
  virtual Result<CrowdRunResult> Finish() = 0;
};

/// \brief Construction knobs for SimulatedCrowdBackend.
struct SimulatedCrowdOptions {
  /// Worker threads for the per-HIT-parallel simulation (workflow
  /// convention: 0 = auto, 1 = serial). Identical output at any value.
  uint32_t num_threads = 1;
  /// Optional export tee: every polled response (and the finish record) is
  /// also appended to this writer — `record:` mode. Must outlive the
  /// backend.
  VoteLogWriter* tee = nullptr;
};

/// \brief Today's deterministic simulator behind the backend interface.
///
/// Bitwise contract: driving a workflow through this backend produces
/// exactly the bytes the pre-backend `HybridWorkflow::Run` produced — the
/// simulation still runs per HIT from Rng(seed, global HIT index) inside
/// one CrowdSession that spans all batches, so batch boundaries, execution
/// mode, and thread counts remain invisible (pinned by the golden workflow
/// test's backend dimension).
class SimulatedCrowdBackend : public CrowdBackend {
 public:
  /// \brief Construction knobs (alias; see SimulatedCrowdOptions).
  using Options = SimulatedCrowdOptions;

  /// \brief Builds the worker pool from (model, seed) and opens a
  /// partitioned CrowdSession over it. `entity_of` (ground truth per
  /// record) must outlive the backend.
  static Result<std::unique_ptr<SimulatedCrowdBackend>> Create(
      const CrowdModel& model, uint64_t seed, const std::vector<uint32_t>& entity_of,
      Options options = Options());

  Result<Ticket> Post(const HitBatch& batch) override;
  Result<VoteBatch> Poll(Ticket ticket) override;
  Result<CrowdRunResult> Finish() override;

 private:
  SimulatedCrowdBackend(const CrowdModel& model, uint64_t seed, VoteLogWriter* tee);

  CrowdPlatform platform_;
  std::unique_ptr<CrowdSession> session_;
  VoteLogWriter* tee_ = nullptr;
  /// The answer prepared by Post, awaiting its Poll.
  VoteBatch pending_votes_;
  const HitBatch* pending_batch_ = nullptr;  // non-owning; valid until Poll
  Ticket next_ticket_ = 0;
  bool ticket_outstanding_ = false;
  bool finished_ = false;
};

/// \brief The answer-producing function a CallbackCrowdBackend wraps: given
/// a posted batch, return its votes and assignment records (or an error).
using CrowdCallback = std::function<Result<VoteBatch>(const HitBatch&)>;

/// \brief A crowd implemented by a user-supplied function — the embedding
/// hook for tests, ground-truth oracles, and adapters to live platforms.
///
/// Finish() assembles statistics from what the callback returned
/// (HIT/assignment counts, durations, distinct workers); cost and
/// wall-clock latency stay zero unless the embedder knows better — they are
/// platform concerns the callback cannot see.
class CallbackCrowdBackend : public CrowdBackend {
 public:
  /// \brief Wraps `callback`; it is invoked once per posted batch, at Poll.
  explicit CallbackCrowdBackend(CrowdCallback callback);

  Result<Ticket> Post(const HitBatch& batch) override;
  Result<VoteBatch> Poll(Ticket ticket) override;
  Result<CrowdRunResult> Finish() override;

 private:
  CrowdCallback callback_;
  const HitBatch* pending_batch_ = nullptr;  // non-owning; valid until Poll
  Ticket next_ticket_ = 0;
  bool ticket_outstanding_ = false;
  bool finished_ = false;
  CrowdRunResult stats_;
  std::set<uint32_t> workers_seen_;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_BACKEND_H_
