#include "crowd/backend.h"

#include <algorithm>

#include "crowd/vote_log.h"

namespace crowder {
namespace crowd {

double AssignmentMedianSeconds(std::vector<double> durations) {
  if (durations.empty()) return 0.0;
  std::sort(durations.begin(), durations.end());
  const size_t mid = durations.size() / 2;
  return durations.size() % 2 == 1 ? durations[mid]
                                   : 0.5 * (durations[mid - 1] + durations[mid]);
}

Status ValidateBatchShape(const HitBatch& batch) {
  if (batch.pairs == nullptr) {
    return Status::InvalidArgument("HitBatch.pairs must be set (the round's pair context)");
  }
  const bool has_pair = batch.pair_hits != nullptr && !batch.pair_hits->empty();
  const bool has_cluster = batch.cluster_hits != nullptr && !batch.cluster_hits->empty();
  if (has_pair == has_cluster) {
    return Status::InvalidArgument(
        "HitBatch must carry exactly one non-empty HIT list (pair-based or cluster-based)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SimulatedCrowdBackend
// ---------------------------------------------------------------------------

SimulatedCrowdBackend::SimulatedCrowdBackend(const CrowdModel& model, uint64_t seed,
                                             VoteLogWriter* tee)
    : platform_(model, seed), tee_(tee) {}

Result<std::unique_ptr<SimulatedCrowdBackend>> SimulatedCrowdBackend::Create(
    const CrowdModel& model, uint64_t seed, const std::vector<uint32_t>& entity_of,
    Options options) {
  auto backend = std::unique_ptr<SimulatedCrowdBackend>(
      new SimulatedCrowdBackend(model, seed, options.tee));
  CROWDER_ASSIGN_OR_RETURN(
      backend->session_,
      CrowdSession::CreatePartitioned(backend->platform_, entity_of, options.num_threads,
                                      /*capture_responses=*/true));
  return backend;
}

Result<Ticket> SimulatedCrowdBackend::Post(const HitBatch& batch) {
  if (finished_) return Status::InvalidArgument("Post after Finish");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Post before the previous batch was polled");
  }
  CROWDER_RETURN_NOT_OK(ValidateBatchShape(batch));
  if (batch.first_hit != session_->num_hits()) {
    return Status::InvalidArgument("HitBatch.first_hit " + std::to_string(batch.first_hit) +
                                   " does not continue the session's HIT sequence (next is " +
                                   std::to_string(session_->num_hits()) + ")");
  }

  // Simulate synchronously: one partition per batch. The session's per-HIT
  // seeding keeps the outcome bitwise-independent of the batching.
  CROWDER_RETURN_NOT_OK(session_->StartPartition(*batch.pairs));
  if (batch.pair_hits != nullptr) {
    CROWDER_RETURN_NOT_OK(session_->ProcessPairHits(*batch.pair_hits));
  } else {
    CROWDER_RETURN_NOT_OK(session_->ProcessClusterHits(*batch.cluster_hits));
  }
  CROWDER_ASSIGN_OR_RETURN(CrowdSession::PartitionResponses responses,
                           session_->TakePartitionResponses());

  // Convert partition-local pair indices to record-id keyed votes.
  const std::vector<similarity::ScoredPair>& pairs = *batch.pairs;
  pending_votes_ = VoteBatch{};
  pending_votes_.hit_votes.reserve(responses.hits.size());
  for (CrowdSession::HitResponse& hit : responses.hits) {
    HitVotes out;
    out.hit = hit.hit;
    out.votes.reserve(hit.votes.size());
    for (const auto& [pair_idx, vote] : hit.votes) {
      out.votes.push_back({pairs[pair_idx].a, pairs[pair_idx].b, vote});
    }
    pending_votes_.hit_votes.push_back(std::move(out));
  }
  pending_votes_.assignments = std::move(responses.assignments);

  pending_batch_ = &batch;
  ticket_outstanding_ = true;
  return next_ticket_;
}

Result<VoteBatch> SimulatedCrowdBackend::Poll(Ticket ticket) {
  if (finished_) return Status::InvalidArgument("Poll after Finish");
  if (!ticket_outstanding_ || ticket != next_ticket_) {
    return Status::InvalidArgument("Poll for unknown ticket " + std::to_string(ticket));
  }
  if (tee_ != nullptr) {
    CROWDER_RETURN_NOT_OK(tee_->WriteBatch(*pending_batch_, pending_votes_));
  }
  ticket_outstanding_ = false;
  pending_batch_ = nullptr;
  ++next_ticket_;
  return std::move(pending_votes_);
}

Result<CrowdRunResult> SimulatedCrowdBackend::Finish() {
  if (finished_) return Status::InvalidArgument("Finish called twice");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Finish with an unpolled HIT batch outstanding");
  }
  finished_ = true;
  CROWDER_ASSIGN_OR_RETURN(CrowdRunResult stats, session_->Finish());
  if (tee_ != nullptr) CROWDER_RETURN_NOT_OK(tee_->WriteFinish(stats));
  return stats;
}

// ---------------------------------------------------------------------------
// CallbackCrowdBackend
// ---------------------------------------------------------------------------

CallbackCrowdBackend::CallbackCrowdBackend(CrowdCallback callback)
    : callback_(std::move(callback)) {}

Result<Ticket> CallbackCrowdBackend::Post(const HitBatch& batch) {
  if (finished_) return Status::InvalidArgument("Post after Finish");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Post before the previous batch was polled");
  }
  CROWDER_RETURN_NOT_OK(ValidateBatchShape(batch));
  pending_batch_ = &batch;
  ticket_outstanding_ = true;
  return next_ticket_;
}

Result<VoteBatch> CallbackCrowdBackend::Poll(Ticket ticket) {
  if (finished_) return Status::InvalidArgument("Poll after Finish");
  if (!ticket_outstanding_ || ticket != next_ticket_) {
    return Status::InvalidArgument("Poll for unknown ticket " + std::to_string(ticket));
  }
  CROWDER_ASSIGN_OR_RETURN(VoteBatch votes, callback_(*pending_batch_));
  stats_.num_hits += static_cast<uint32_t>(pending_batch_->num_hits());
  for (const AssignmentRecord& rec : votes.assignments) {
    workers_seen_.insert(rec.worker);
    if (rec.by_spammer) ++stats_.num_spammer_assignments;
    stats_.total_comparisons += rec.comparisons;
    stats_.assignment_seconds.push_back(rec.duration_seconds);
    stats_.assignments.push_back(rec);
  }
  ticket_outstanding_ = false;
  pending_batch_ = nullptr;
  ++next_ticket_;
  return votes;
}

Result<CrowdRunResult> CallbackCrowdBackend::Finish() {
  if (finished_) return Status::InvalidArgument("Finish called twice");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Finish with an unpolled HIT batch outstanding");
  }
  finished_ = true;
  stats_.num_assignments = static_cast<uint32_t>(stats_.assignment_seconds.size());
  stats_.median_assignment_seconds = AssignmentMedianSeconds(stats_.assignment_seconds);
  stats_.num_distinct_workers = static_cast<uint32_t>(workers_seen_.size());
  // cost_dollars / total_seconds stay zero: platform concerns the callback
  // cannot observe (see the class comment).
  return std::move(stats_);
}

}  // namespace crowd
}  // namespace crowder
