// Simulated crowd workers: reliable, noisy, spammer, colluder, and sleeper
// profiles with a difficulty-dependent error model and per-worker
// deterministic randomness.
#ifndef CROWDER_CROWD_WORKER_H_
#define CROWDER_CROWD_WORKER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crowd/crowd_model.h"

namespace crowder {
namespace crowd {

enum class WorkerType { kReliable, kNoisy, kSpammer, kColluder, kSleeper };

const char* WorkerTypeName(WorkerType type);

/// \brief One simulated worker. Each worker owns an independent random
/// stream, so results do not depend on the order in which workers are asked.
class Worker {
 public:
  Worker(uint32_t id, WorkerType type, double speed_factor, Rng rng, uint64_t policy_seed = 0)
      : id_(id),
        type_(type),
        speed_factor_(speed_factor),
        rng_(std::move(rng)),
        policy_seed_(policy_seed) {}

  uint32_t id() const { return id_; }
  WorkerType type() const { return type_; }
  bool is_spammer() const { return type_ == WorkerType::kSpammer; }
  /// True for every archetype that answers without reading the records:
  /// independent spammers, colluding rings, and sleepers (post-admission).
  bool is_adversarial() const {
    return type_ == WorkerType::kSpammer || type_ == WorkerType::kColluder ||
           type_ == WorkerType::kSleeper;
  }
  /// Shared ring seed for colluders (0 for every other type).
  uint64_t policy_seed() const { return policy_seed_; }
  /// Multiplier on comparison time (1.0 = average worker).
  double speed_factor() const { return speed_factor_; }

  /// Answers "are these the same entity?" for a pair whose true answer is
  /// `truth`, machine likelihood `likelihood`, and intrinsic hardness draw
  /// `hardness_u` in [0,1] (see CrowdModel for the error model). Honest
  /// workers err with the difficulty-dependent probability; spammers ignore
  /// the records entirely. Draws from the worker's own stream.
  bool AnswerPair(bool truth, double likelihood, double hardness_u, const CrowdModel& model);

  /// Same decision rule, but drawing from a caller-provided stream instead of
  /// the worker's own. This is what makes per-HIT seed derivation possible:
  /// CrowdSession answers every pair of a HIT from that HIT's derived Rng, so
  /// a worker's answers do not depend on which other HITs they were assigned
  /// — the property that lets HIT batches simulate in parallel while staying
  /// bitwise-deterministic.
  bool AnswerPairWith(Rng* rng, bool truth, double likelihood, double hardness_u,
                      const CrowdModel& model) const;

  /// Simulates the §7.1 qualification test: `truths` are the correct answers
  /// of the test pairs, `likelihoods` their difficulty. Test pairs are
  /// curated to be unambiguous (hardness 0). Pass requires all answers
  /// correct.
  bool TakeQualificationTest(const std::vector<bool>& truths,
                             const std::vector<double>& likelihoods, const CrowdModel& model);

  /// The truth-conditional error probability this worker has on a pair
  /// (exposed for tests and for filters calibrated on worker behaviour).
  /// For answer-blind archetypes (spammer, sleeper, colluder) this is the
  /// actual error implied by their yes-rate — e.g. a spammer with
  /// spammer_yes_rate 0.55 errs with probability 0.45 on true matches and
  /// 0.55 on non-matches, not a flat 0.5.
  double ErrorProbability(bool truth, double likelihood, double hardness_u,
                          const CrowdModel& model) const;

 private:
  uint32_t id_;
  WorkerType type_;
  double speed_factor_;
  Rng rng_;
  uint64_t policy_seed_ = 0;
};

/// \brief Builds the worker pool for a platform run: `pool_size` workers with
/// the model's type mix, speeds, and forked random streams.
std::vector<Worker> MakeWorkerPool(const CrowdModel& model, Rng* rng);

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_WORKER_H_
