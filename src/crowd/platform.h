// The crowdsourcing platform simulator standing in for Amazon Mechanical
// Turk: publishes HITs, replicates each into distinct-worker assignments,
// optionally gates workers behind a qualification test, produces per-pair
// votes for aggregation, and simulates per-assignment durations plus the
// wall-clock time until every assignment completes (worker arrival process).
#ifndef CROWDER_CROWD_PLATFORM_H_
#define CROWDER_CROWD_PLATFORM_H_

#include <cstdint>
#include <vector>

#include "aggregate/votes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crowd/crowd_model.h"
#include "crowd/worker.h"
#include "hitgen/hit.h"
#include "similarity/similarity_join.h"

namespace crowder {
namespace crowd {

/// \brief Ground truth + machine likelihood context a run needs.
struct CrowdContext {
  /// Candidate pairs (the surviving set P), with machine likelihoods.
  /// Vote output is aligned with this list.
  const std::vector<similarity::ScoredPair>* pairs = nullptr;
  /// Ground-truth entity id per record (indexed by record id).
  const std::vector<uint32_t>* entity_of = nullptr;
};

/// \brief One completed assignment, for auditing and latency analysis.
struct AssignmentRecord {
  uint32_t hit = 0;
  uint32_t worker = 0;  ///< pool worker id (answer provenance)
  double duration_seconds = 0.0;
  uint64_t comparisons = 0;
  /// True when the assignee is answer-blind (spammer, colluder, or sleeper).
  bool by_spammer = false;
};

/// \brief Everything a crowd run produces.
struct CrowdRunResult {
  /// votes[i] = worker votes on (*context.pairs)[i]. Pairs not covered by
  /// any HIT have no votes.
  aggregate::VoteTable votes;
  /// Audit trail: one record per completed assignment, in publish order.
  std::vector<AssignmentRecord> assignments;
  /// Duration of each completed assignment, seconds.
  std::vector<double> assignment_seconds;
  double median_assignment_seconds = 0.0;
  /// Wall-clock seconds until the last assignment completed, under the
  /// worker-arrival model.
  double total_seconds = 0.0;
  double cost_dollars = 0.0;
  uint32_t num_hits = 0;
  uint32_t num_assignments = 0;
  uint64_t total_comparisons = 0;
  uint32_t num_distinct_workers = 0;
  uint32_t num_spammer_assignments = 0;
};

/// \brief The simulated platform. Deterministic given (model, seed).
///
/// Construction builds the worker pool and runs the optional qualification
/// gate. HIT simulation itself lives in CrowdSession (crowd/session.h) —
/// every HIT draws from an Rng derived from (seed, global HIT index), so
/// runs are bitwise-identical at any batch partition and thread count. The
/// Run*Hits entry points below are one-shot conveniences over a session.
class CrowdPlatform {
 public:
  CrowdPlatform(const CrowdModel& model, uint64_t seed);

  /// Publishes pair-based HITs and collects all assignments.
  Result<CrowdRunResult> RunPairHits(const std::vector<hitgen::PairBasedHit>& hits,
                                     const CrowdContext& context) const;

  /// Publishes cluster-based HITs. Workers label the records entity by
  /// entity (the §6 procedure); pairwise votes are derived from the final
  /// labels for every candidate pair inside the HIT.
  Result<CrowdRunResult> RunClusterHits(const std::vector<hitgen::ClusterBasedHit>& hits,
                                        const CrowdContext& context) const;

  /// Workers who passed the gate (all workers when the qualification test is
  /// off). Exposed for tests.
  const std::vector<uint32_t>& eligible_workers() const { return eligible_; }

  /// The frozen worker pool (answer provenance indexes into this).
  const std::vector<Worker>& workers() const { return workers_; }

  const CrowdModel& model() const { return model_; }

  /// The seed HIT streams derive from (see crowd/session.h).
  uint64_t seed() const { return seed_; }

 private:
  CrowdModel model_;
  uint64_t seed_;
  std::vector<Worker> workers_;
  std::vector<uint32_t> eligible_;
};

}  // namespace crowd
}  // namespace crowder

#endif  // CROWDER_CROWD_PLATFORM_H_
