#include "crowd/vote_log.h"

#include <charconv>
#include <cmath>
#include <system_error>
#include <unordered_set>

#include "common/logging.h"

namespace crowder {
namespace crowd {

namespace {

// Shortest round-trip formatting via std::to_chars: locale-independent (an
// embedder's setlocale can never corrupt a log) and exact for every finite
// IEEE-754 double — the property the replay's byte-identity claim rests on.
std::string ExactDouble(double value) {
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  CROWDER_CHECK(ec == std::errc());
  return std::string(buf, end);
}

// ---------------------------------------------------------------------------
// Minimal JSON for the machine-written log lines. Strict enough to reject
// truncated or hand-corrupted lines with a useful message; numbers are
// doubles (every id in the log is far below 2^53).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    CROWDER_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipSpace();
      CROWDER_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      CROWDER_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace_back(std::move(key.string), std::move(member));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      CROWDER_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            c = esc;  // \", \\, \/ and anything else: literal
        }
      }
      value.string.push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Fail("expected 'true' or 'false'");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Fail("expected 'null'");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    // std::from_chars: the locale-independent inverse of ExactDouble.
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double number = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, number);
    if (ec != std::errc() || ptr == begin || !std::isfinite(number)) {
      return Fail("expected number");
    }
    pos_ += static_cast<size_t>(ptr - begin);
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = number;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Field accessors that fail with a message instead of asserting — log lines
// come from disk.
Result<double> NumberField(const JsonValue& object, const std::string& key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("missing or non-numeric field '" + key + "'");
  }
  return value->number;
}

Result<const JsonValue*> ArrayField(const JsonValue& object, const std::string& key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing or non-array field '" + key + "'");
  }
  return value;
}

Result<std::vector<double>> NumberArray(const JsonValue& array, size_t expected_size,
                                        const std::string& what) {
  if (array.type != JsonValue::Type::kArray || array.array.size() != expected_size) {
    return Status::InvalidArgument("malformed " + what + " entry");
  }
  std::vector<double> out;
  out.reserve(expected_size);
  for (const JsonValue& element : array.array) {
    if (element.type != JsonValue::Type::kNumber) {
      return Status::InvalidArgument("malformed " + what + " entry");
    }
    out.push_back(element.number);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// VoteLogWriter
// ---------------------------------------------------------------------------

VoteLogWriter::VoteLogWriter(std::string path, std::ofstream out)
    : path_(std::move(path)), out_(std::move(out)) {}

Result<std::unique_ptr<VoteLogWriter>> VoteLogWriter::Create(const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open vote log for writing: " + path);
  auto writer = std::unique_ptr<VoteLogWriter>(new VoteLogWriter(path, std::move(out)));
  writer->out_ << "{\"crowder_vote_log\":1}\n";
  return writer;
}

Status VoteLogWriter::WriteBatch(const HitBatch& hits, const VoteBatch& votes) {
  if (closed_) return Status::InvalidArgument("WriteBatch on a closed vote log");
  if (failed_) return Status::InvalidArgument("vote log failed earlier; log is incomplete");
  // The merged walk below requires hit_votes and assignments in HIT order
  // within the batch (the VoteBatch contract). Validate before writing a
  // byte: an out-of-order batch written anyway would silently drop votes
  // from the log while still passing every replay identity check.
  const uint32_t end_hit = hits.first_hit + static_cast<uint32_t>(hits.num_hits());
  const auto in_range_and_ordered = [&](uint32_t hit, uint32_t prev) {
    return hit >= hits.first_hit && hit < end_hit && hit >= prev;
  };
  uint32_t prev = hits.first_hit;
  for (const HitVotes& hv : votes.hit_votes) {
    if (!in_range_and_ordered(hv.hit, prev)) {
      failed_ = true;
      return Status::InvalidArgument(
          "VoteBatch is not in HIT order (or names HITs outside the batch); the vote log "
          "requires per-HIT responses sorted by global HIT index");
    }
    prev = hv.hit;
  }
  prev = hits.first_hit;
  for (const AssignmentRecord& rec : votes.assignments) {
    if (!in_range_and_ordered(rec.hit, prev)) {
      failed_ = true;
      return Status::InvalidArgument(
          "VoteBatch assignments are not in HIT order (or name HITs outside the batch)");
    }
    prev = rec.hit;
  }

  // One merged walk: a cursor per vector writes every line in O(n) instead
  // of rescanning the whole batch per HIT.
  size_t vote_cursor = 0;
  size_t assignment_cursor = 0;
  for (size_t i = 0; i < hits.num_hits(); ++i) {
    const uint32_t hit = hits.first_hit + static_cast<uint32_t>(i);
    out_ << "{\"hit\":" << hit;
    if (hits.pair_hits != nullptr) {
      out_ << ",\"pairs\":[";
      const auto& edges = (*hits.pair_hits)[i].pairs;
      for (size_t e = 0; e < edges.size(); ++e) {
        out_ << (e == 0 ? "" : ",") << '[' << edges[e].a << ',' << edges[e].b << ']';
      }
      out_ << ']';
    } else {
      out_ << ",\"records\":[";
      const auto& records = (*hits.cluster_hits)[i].records;
      for (size_t r = 0; r < records.size(); ++r) {
        out_ << (r == 0 ? "" : ",") << records[r];
      }
      out_ << ']';
    }
    out_ << ",\"votes\":[";
    bool first = true;
    while (vote_cursor < votes.hit_votes.size() && votes.hit_votes[vote_cursor].hit == hit) {
      for (const PairVote& pv : votes.hit_votes[vote_cursor].votes) {
        out_ << (first ? "" : ",") << '[' << pv.a << ',' << pv.b << ',' << pv.vote.worker_id
             << ',' << (pv.vote.says_match ? 1 : 0) << ']';
        first = false;
      }
      ++vote_cursor;
    }
    out_ << "],\"assignments\":[";
    first = true;
    while (assignment_cursor < votes.assignments.size() &&
           votes.assignments[assignment_cursor].hit == hit) {
      const AssignmentRecord& rec = votes.assignments[assignment_cursor];
      out_ << (first ? "" : ",") << '[' << rec.worker << ',' << ExactDouble(rec.duration_seconds)
           << ',' << rec.comparisons << ',' << (rec.by_spammer ? 1 : 0) << ']';
      first = false;
      ++assignment_cursor;
    }
    out_ << "]}\n";
  }
  if (!out_.good()) {
    failed_ = true;  // partial lines may be on disk; the log must not be completed
    return Status::IOError("write to vote log failed: " + path_);
  }
  return Status::OK();
}

Status VoteLogWriter::WriteFinish(const CrowdRunResult& stats) {
  if (closed_) return Status::InvalidArgument("WriteFinish on a closed vote log");
  if (failed_) return Status::InvalidArgument("vote log failed earlier; log is incomplete");
  out_ << "{\"finish\":{"
       << "\"num_hits\":" << stats.num_hits
       << ",\"num_assignments\":" << stats.num_assignments
       << ",\"total_comparisons\":" << stats.total_comparisons
       << ",\"num_distinct_workers\":" << stats.num_distinct_workers
       << ",\"num_spammer_assignments\":" << stats.num_spammer_assignments
       << ",\"median_assignment_seconds\":" << ExactDouble(stats.median_assignment_seconds)
       << ",\"total_seconds\":" << ExactDouble(stats.total_seconds)
       << ",\"cost_dollars\":" << ExactDouble(stats.cost_dollars) << "}}\n";
  if (!out_.good()) return Status::IOError("write to vote log failed: " + path_);
  return Status::OK();
}

Status VoteLogWriter::Close() {
  if (closed_) return Status::InvalidArgument("vote log already closed");
  closed_ = true;
  out_.flush();
  const bool flush_ok = out_.good();
  out_.close();
  if (failed_) {
    return Status::IOError("vote log " + path_ + " is incomplete (an earlier write failed)");
  }
  if (!flush_ok) return Status::IOError("flushing vote log failed: " + path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RecordedCrowdBackend
// ---------------------------------------------------------------------------

RecordedCrowdBackend::RecordedCrowdBackend(std::string path, std::ifstream in)
    : path_(std::move(path)), in_(std::move(in)) {}

Result<std::unique_ptr<RecordedCrowdBackend>> RecordedCrowdBackend::Open(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open vote log: " + path);
  auto backend =
      std::unique_ptr<RecordedCrowdBackend>(new RecordedCrowdBackend(path, std::move(in)));
  std::string line;
  if (!backend->NextLine(&line)) {
    return Status::DataLoss("vote log is empty: " + path);
  }
  auto header = JsonParser(line).Parse();
  if (!header.ok() || header->Find("crowder_vote_log") == nullptr) {
    return Status::DataLoss("not a crowder vote log (bad header line): " + path);
  }
  return backend;
}

bool RecordedCrowdBackend::NextLine(std::string* line) {
  while (std::getline(in_, *line)) {
    if (!line->empty()) return true;  // tolerate blank lines
  }
  return false;
}

Result<Ticket> RecordedCrowdBackend::Post(const HitBatch& batch) {
  if (finished_) return Status::InvalidArgument("Post after Finish");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Post before the previous batch was polled");
  }
  CROWDER_RETURN_NOT_OK(ValidateBatchShape(batch));
  pending_batch_ = &batch;
  ticket_outstanding_ = true;
  return next_ticket_;
}

Result<VoteBatch> RecordedCrowdBackend::Poll(Ticket ticket) {
  if (finished_) return Status::InvalidArgument("Poll after Finish");
  if (!ticket_outstanding_ || ticket != next_ticket_) {
    return Status::InvalidArgument("Poll for unknown ticket " + std::to_string(ticket));
  }
  const HitBatch& batch = *pending_batch_;
  VoteBatch out;
  out.hit_votes.reserve(batch.num_hits());

  // Log corruption inside a vote entry (a flipped record id) must surface
  // here as DataLoss — not later as the driver's generic bad-transport
  // rejection — so replay failures keep their distinct classification.
  std::unordered_set<uint64_t> context_keys;
  context_keys.reserve(batch.pairs->size());
  for (const auto& p : *batch.pairs) context_keys.insert(PairKey(p.a, p.b));

  for (size_t i = 0; i < batch.num_hits(); ++i) {
    const uint32_t hit = batch.first_hit + static_cast<uint32_t>(i);
    const std::string at_hit = " at HIT " + std::to_string(hit);
    std::string line;
    if (!NextLine(&line)) {
      return Status::DataLoss("vote log " + path_ + " truncated: log ended" + at_hit +
                              " with the HIT batch still pending");
    }
    auto parsed = JsonParser(line).Parse();
    if (!parsed.ok()) {
      return Status::DataLoss("vote log " + path_ + " corrupt" + at_hit + ": " +
                              parsed.status().message());
    }
    if (parsed->Find("finish") != nullptr) {
      return Status::DataLoss("vote log " + path_ + " truncated: finish record reached" +
                              at_hit + " but the run generated more HITs");
    }
    auto recorded_hit = NumberField(*parsed, "hit");
    if (!recorded_hit.ok() || static_cast<uint32_t>(*recorded_hit) != hit) {
      return Status::DataLoss("vote log " + path_ + " mismatch" + at_hit +
                              ": recorded line carries HIT index " +
                              (recorded_hit.ok() ? std::to_string(static_cast<uint64_t>(
                                                       *recorded_hit))
                                                 : std::string("<missing>")));
    }

    // The recorded HIT identity must be the generated one — a log recorded
    // from a different configuration (threshold, k, seed...) fails here.
    if (batch.pair_hits != nullptr) {
      const auto& edges = (*batch.pair_hits)[i].pairs;
      CROWDER_ASSIGN_OR_RETURN(const JsonValue* pairs, ArrayField(*parsed, "pairs"));
      bool match = pairs->array.size() == edges.size();
      for (size_t e = 0; match && e < edges.size(); ++e) {
        auto pair = NumberArray(pairs->array[e], 2, "pair");
        match = pair.ok() && static_cast<uint32_t>((*pair)[0]) == edges[e].a &&
                static_cast<uint32_t>((*pair)[1]) == edges[e].b;
      }
      if (!match) {
        return Status::DataLoss("vote log " + path_ + " mismatch" + at_hit +
                                ": recorded pairs differ from the generated HIT");
      }
    } else {
      const auto& records = (*batch.cluster_hits)[i].records;
      CROWDER_ASSIGN_OR_RETURN(const JsonValue* recs, ArrayField(*parsed, "records"));
      bool match = recs->array.size() == records.size();
      for (size_t r = 0; match && r < records.size(); ++r) {
        match = recs->array[r].type == JsonValue::Type::kNumber &&
                static_cast<uint32_t>(recs->array[r].number) == records[r];
      }
      if (!match) {
        return Status::DataLoss("vote log " + path_ + " mismatch" + at_hit +
                                ": recorded records differ from the generated HIT");
      }
    }

    HitVotes hv;
    hv.hit = hit;
    CROWDER_ASSIGN_OR_RETURN(const JsonValue* votes, ArrayField(*parsed, "votes"));
    hv.votes.reserve(votes->array.size());
    for (const JsonValue& entry : votes->array) {
      auto fields = NumberArray(entry, 4, "vote");
      if (!fields.ok()) {
        return Status::DataLoss("vote log " + path_ + " corrupt" + at_hit + ": " +
                                fields.status().message());
      }
      PairVote pv;
      pv.a = static_cast<uint32_t>((*fields)[0]);
      pv.b = static_cast<uint32_t>((*fields)[1]);
      pv.vote.worker_id = static_cast<uint32_t>((*fields)[2]);
      pv.vote.says_match = (*fields)[3] != 0.0;
      if (context_keys.find(PairKey(pv.a, pv.b)) == context_keys.end()) {
        return Status::DataLoss("vote log " + path_ + " corrupt" + at_hit +
                                ": recorded vote names pair (" + std::to_string(pv.a) + "," +
                                std::to_string(pv.b) +
                                ") outside the batch's candidate context");
      }
      hv.votes.push_back(pv);
    }
    out.hit_votes.push_back(std::move(hv));

    CROWDER_ASSIGN_OR_RETURN(const JsonValue* assignments, ArrayField(*parsed, "assignments"));
    for (const JsonValue& entry : assignments->array) {
      auto fields = NumberArray(entry, 4, "assignment");
      if (!fields.ok()) {
        return Status::DataLoss("vote log " + path_ + " corrupt" + at_hit + ": " +
                                fields.status().message());
      }
      AssignmentRecord rec;
      rec.hit = hit;
      rec.worker = static_cast<uint32_t>((*fields)[0]);
      rec.duration_seconds = (*fields)[1];
      rec.comparisons = static_cast<uint64_t>((*fields)[2]);
      rec.by_spammer = (*fields)[3] != 0.0;
      out.assignments.push_back(rec);
      assignments_.push_back(rec);
      assignment_seconds_.push_back(rec.duration_seconds);
    }
  }

  hits_replayed_ += static_cast<uint32_t>(batch.num_hits());
  ticket_outstanding_ = false;
  pending_batch_ = nullptr;
  ++next_ticket_;
  return out;
}

Result<CrowdRunResult> RecordedCrowdBackend::Finish() {
  if (finished_) return Status::InvalidArgument("Finish called twice");
  if (ticket_outstanding_) {
    return Status::InvalidArgument("Finish with an unpolled HIT batch outstanding");
  }
  finished_ = true;
  std::string line;
  if (!NextLine(&line)) {
    return Status::DataLoss("vote log " + path_ +
                            " truncated: missing finish record after HIT " +
                            std::to_string(hits_replayed_ == 0 ? 0 : hits_replayed_ - 1));
  }
  auto parsed = JsonParser(line).Parse();
  if (!parsed.ok()) {
    return Status::DataLoss("vote log " + path_ + " corrupt finish record: " +
                            parsed.status().message());
  }
  const JsonValue* finish = parsed->Find("finish");
  if (finish == nullptr) {
    auto extra_hit = NumberField(*parsed, "hit");
    return Status::DataLoss(
        "vote log " + path_ + " mismatch: log continues past the run's last HIT" +
        (extra_hit.ok()
             ? " (next recorded HIT " + std::to_string(static_cast<uint64_t>(*extra_hit)) + ")"
             : ""));
  }

  CrowdRunResult stats;
  CROWDER_ASSIGN_OR_RETURN(const double num_hits, NumberField(*finish, "num_hits"));
  CROWDER_ASSIGN_OR_RETURN(const double num_assignments,
                           NumberField(*finish, "num_assignments"));
  CROWDER_ASSIGN_OR_RETURN(const double comparisons, NumberField(*finish, "total_comparisons"));
  CROWDER_ASSIGN_OR_RETURN(const double workers, NumberField(*finish, "num_distinct_workers"));
  CROWDER_ASSIGN_OR_RETURN(const double spam, NumberField(*finish, "num_spammer_assignments"));
  CROWDER_ASSIGN_OR_RETURN(stats.median_assignment_seconds,
                           NumberField(*finish, "median_assignment_seconds"));
  CROWDER_ASSIGN_OR_RETURN(stats.total_seconds, NumberField(*finish, "total_seconds"));
  CROWDER_ASSIGN_OR_RETURN(stats.cost_dollars, NumberField(*finish, "cost_dollars"));
  stats.num_hits = static_cast<uint32_t>(num_hits);
  stats.num_assignments = static_cast<uint32_t>(num_assignments);
  stats.total_comparisons = static_cast<uint64_t>(comparisons);
  stats.num_distinct_workers = static_cast<uint32_t>(workers);
  stats.num_spammer_assignments = static_cast<uint32_t>(spam);
  stats.assignments = std::move(assignments_);
  stats.assignment_seconds = std::move(assignment_seconds_);
  return stats;
}

}  // namespace crowd
}  // namespace crowder
