#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "shard/process.h"
#include "shard/worker.h"

namespace crowder {
namespace shard {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

Status AnnotateShard(const Status& status, uint32_t shard) {
  if (status.ok()) return status;
  return Status(status.code(), "shard " + std::to_string(shard) + ": " + status.message());
}

/// Ships shard `s`'s slice of the plan as one job spec.
Status ShipSpec(const similarity::JoinInput& input, const similarity::JoinOptions& options,
                const ShardPlan& plan, uint32_t s, uint32_t records_per_frame,
                FrameTransport* transport) {
  const ShardAssignment& a = plan.shards[s];
  JobSpec spec;
  spec.shard_index = s;
  spec.num_shards = plan.num_shards();
  spec.measure = options.measure;
  spec.threshold = options.threshold;
  spec.has_sources = !input.sources.empty();
  spec.num_records = a.owned_end - a.replica_begin;
  CROWDER_RETURN_NOT_OK(transport->Send(EncodeJobSpec(spec)));
  for (uint64_t begin = a.replica_begin; begin < a.owned_end; begin += records_per_frame) {
    const uint64_t end = std::min<uint64_t>(a.owned_end, begin + records_per_frame);
    std::vector<uint8_t> payload;
    for (uint64_t p = begin; p < end; ++p) {
      const uint32_t rec = plan.by_size[p];
      AppendRecordEntry(&payload, rec, p, p >= a.owned_begin,
                        spec.has_sources ? input.sources[rec] : 0, input.sets[rec]);
    }
    CROWDER_RETURN_NOT_OK(
        transport->Send(MakeRecordBatchFrame(static_cast<uint32_t>(end - begin),
                                             std::move(payload))));
  }
  CROWDER_RETURN_NOT_OK(transport->Send(EncodeJobSealed()));
  return transport->CloseSend();
}

/// Drains shard `s`'s result stream into the sink; fills `*worker_stats`.
Status GatherShard(FrameTransport* transport, const ShardPairSink& sink,
                   WorkerStats* worker_stats, uint64_t* total_pairs) {
  while (true) {
    Frame frame;
    CROWDER_ASSIGN_OR_RETURN(frame, transport->Recv());
    switch (frame.type) {
      case FrameType::kPairBatch: {
        CROWDER_ASSIGN_OR_RETURN(auto pairs, DecodePairBatch(frame));
        *total_pairs += pairs.size();
        if (!pairs.empty()) CROWDER_RETURN_NOT_OK(sink(std::move(pairs)));
        break;
      }
      case FrameType::kWorkerDone: {
        CROWDER_ASSIGN_OR_RETURN(*worker_stats, DecodeWorkerDone(frame));
        return Status::OK();
      }
      case FrameType::kWorkerError: {
        CROWDER_ASSIGN_OR_RETURN(const WorkerError error, DecodeWorkerError(frame));
        return Status(error.code, "worker reported: " + error.message);
      }
      default:
        return Status::IOError("worker sent unexpected frame type " +
                               std::to_string(static_cast<uint32_t>(frame.type)));
    }
  }
}

}  // namespace

Status RunShardedJoin(const similarity::JoinInput& input,
                      const similarity::JoinOptions& options, const ShardExecOptions& exec,
                      const ShardPairSink& sink, ShardRunStats* stats) {
  if (exec.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(exec.num_shards));
  }
  if (!sink) return Status::InvalidArgument("sharded join requires a pair sink");
  const uint32_t records_per_frame = exec.records_per_frame == 0 ? 4096 : exec.records_per_frame;
  const bool subprocess = !exec.transport_factory && !exec.worker_path.empty();

  ShardRunStats local_stats;
  ShardRunStats* out = stats != nullptr ? stats : &local_stats;
  *out = ShardRunStats{};
  out->subprocess = subprocess;
  out->shards.resize(exec.num_shards);

  const auto plan_begin = Clock::now();
  ShardPlan plan;
  CROWDER_ASSIGN_OR_RETURN(plan, BuildShardPlan(input, options, exec.num_shards));
  out->plan_wall_ms = MsSince(plan_begin);

  // Spawn / build one transport per shard. WorkerProcess kills and reaps
  // its child on destruction, so every early return below cleans up.
  std::vector<WorkerProcess> processes;
  std::vector<std::unique_ptr<FrameTransport>> owned_transports(exec.num_shards);
  std::vector<FrameTransport*> transports(exec.num_shards, nullptr);
  for (uint32_t s = 0; s < exec.num_shards; ++s) {
    if (exec.transport_factory) {
      CROWDER_ASSIGN_OR_RETURN(owned_transports[s], exec.transport_factory(s));
      if (owned_transports[s] == nullptr) {
        return Status::InvalidArgument("transport factory returned null for shard " +
                                       std::to_string(s));
      }
      transports[s] = owned_transports[s].get();
    } else if (subprocess) {
      auto spawned = SpawnWorkerProcess(exec.worker_path, s, exec.num_shards);
      if (!spawned.ok()) return AnnotateShard(spawned.status(), s);
      processes.push_back(std::move(spawned).ValueOrDie());
      transports[s] = processes.back().transport();
    } else {
      owned_transports[s] = std::make_unique<InProcessTransport>(
          "shard " + std::to_string(s) + " worker (in-process)");
      transports[s] = owned_transports[s].get();
    }
  }

  // Phase 1: ship every spec (workers start joining as soon as their spec
  // seals; see the header's deadlock argument).
  const auto ship_begin = Clock::now();
  for (uint32_t s = 0; s < exec.num_shards; ++s) {
    const Status shipped = ShipSpec(input, options, plan, s, records_per_frame, transports[s]);
    if (!shipped.ok()) {
      // A worker that died during shipping may have left a kWorkerError
      // explaining why — prefer that over the bare EPIPE.
      auto frame = transports[s]->Recv();
      if (frame.ok() && frame.ValueOrDie().type == FrameType::kWorkerError) {
        auto error = DecodeWorkerError(frame.ValueOrDie());
        if (error.ok()) {
          return AnnotateShard(
              Status(error.ValueOrDie().code, "worker reported: " + error.ValueOrDie().message),
              s);
        }
      }
      return AnnotateShard(shipped, s);
    }
  }
  out->ship_wall_ms = MsSince(ship_begin);

  // Phase 2: gather result streams in shard order.
  const auto gather_begin = Clock::now();
  for (uint32_t s = 0; s < exec.num_shards; ++s) {
    CROWDER_RETURN_NOT_OK(AnnotateShard(
        GatherShard(transports[s], sink, &out->shards[s], &out->total_pairs), s));
  }
  for (uint32_t s = 0; s < processes.size(); ++s) {
    CROWDER_RETURN_NOT_OK(AnnotateShard(processes[s].Wait(), s));
  }
  out->gather_wall_ms = MsSince(gather_begin);
  return Status::OK();
}

}  // namespace shard
}  // namespace crowder
