#include "shard/process.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <utility>

namespace crowder {
namespace shard {

namespace {

void IgnoreSigpipeOnce() {
  static std::once_flag flag;
  std::call_once(flag, [] { ::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

WorkerProcess::WorkerProcess(pid_t pid, std::unique_ptr<FrameTransport> transport,
                             std::string name)
    : pid_(pid), transport_(std::move(transport)), name_(std::move(name)) {}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_),
      transport_(std::move(other.transport_)),
      name_(std::move(other.name_)),
      reaped_(other.reaped_) {
  other.reaped_ = true;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    KillAndReap();
    pid_ = other.pid_;
    transport_ = std::move(other.transport_);
    name_ = std::move(other.name_);
    reaped_ = other.reaped_;
    other.reaped_ = true;
  }
  return *this;
}

WorkerProcess::~WorkerProcess() { KillAndReap(); }

void WorkerProcess::KillAndReap() {
  if (reaped_) return;
  reaped_ = true;
  // Close our pipe ends first so a worker blocked on I/O unblocks, then
  // make sure it is gone. The SIGKILL is a no-op for a worker that already
  // exited; waitpid reaps it either way (no zombies on error paths).
  transport_.reset();
  ::kill(pid_, SIGKILL);
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
}

Status WorkerProcess::Wait() {
  if (reaped_) return Status::OK();
  reaped_ = true;
  int wstatus = 0;
  pid_t got;
  while ((got = ::waitpid(pid_, &wstatus, 0)) < 0 && errno == EINTR) {
  }
  if (got < 0) {
    return Status::IOError(name_ + ": waitpid failed: " + std::strerror(errno));
  }
  if (WIFSIGNALED(wstatus)) {
    return Status::IOError(name_ + ": killed by signal " + std::to_string(WTERMSIG(wstatus)));
  }
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
    return Status::IOError(name_ + ": exited with status " +
                           std::to_string(WEXITSTATUS(wstatus)));
  }
  return Status::OK();
}

Result<WorkerProcess> SpawnWorkerProcess(const std::string& worker_path, uint32_t shard_index,
                                         uint32_t num_shards) {
  IgnoreSigpipeOnce();
  if (::access(worker_path.c_str(), X_OK) != 0) {
    return Status::InvalidArgument("shard worker binary not executable: " + worker_path);
  }
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0) {
    return Status::IOError(std::string("pipe() failed: ") + std::strerror(errno));
  }
  if (::pipe(from_child) != 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status::IOError(std::string("pipe() failed: ") + std::strerror(saved));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Status::IOError(std::string("fork() failed: ") + std::strerror(saved));
  }
  if (pid == 0) {
    // Child: pipes become stdin/stdout, everything else is inherited.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string index_arg = std::to_string(shard_index);
    const char* argv[] = {worker_path.c_str(), "worker", index_arg.c_str(), nullptr};
    ::execv(worker_path.c_str(), const_cast<char* const*>(argv));
    // Exec failed; nothing sane to do but exit loudly (the coordinator sees
    // EOF + a non-zero exit status).
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  const std::string name =
      "shard " + std::to_string(shard_index) + "/" + std::to_string(num_shards) + " worker (pid " +
      std::to_string(pid) + ")";
  auto transport = std::make_unique<PipeTransport>(from_child[0], to_child[1], name);
  return WorkerProcess(pid, std::move(transport), name);
}

}  // namespace shard
}  // namespace crowder
