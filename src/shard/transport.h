// Frame transports: how the coordinator and a worker exchange proto.h
// frames. Two implementations, one contract:
//
//   * PipeTransport — length-prefixed frames over a pair of pipe fds; the
//     subprocess runtime (process.h spawns crowder_shardd and hands each
//     side its fds). A peer that dies mid-stream surfaces as an IOError
//     from Recv/Send (never a hang, never a partial frame).
//   * InProcessTransport — the worker runs synchronously inside
//     CloseSend() and its output frames are replayed from a queue. Same
//     frames, same bytes, no processes or threads — the transport the
//     tests (and TSan) use, and the fallback when no worker binary is
//     configured.
//
// The coordinator writes a whole job spec, calls CloseSend(), then reads
// result frames until a terminal kWorkerDone / kWorkerError. Workers
// mirror it: read until kJobSealed, compute, write results.
#ifndef CROWDER_SHARD_TRANSPORT_H_
#define CROWDER_SHARD_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "shard/proto.h"

namespace crowder {
namespace shard {

/// \brief One side of a frame connection. Implementations are
/// single-threaded; the coordinator drives its transports sequentially.
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  /// Sends one frame; IOError when the peer is gone (EPIPE, closed queue).
  virtual Status Send(const Frame& frame) = 0;

  /// Receives the next frame. EOF — at any point, frame boundary or not —
  /// is an IOError naming the peer: the protocol always ends with a
  /// terminal frame, so a bare EOF means the peer died.
  virtual Result<Frame> Recv() = 0;

  /// Seals the sending direction (the peer's Recv sees EOF after the
  /// frames already sent). Send afterwards is an error.
  virtual Status CloseSend() = 0;
};

/// \brief Frames over pipe fds. Owns both fds (closes them on
/// destruction). `peer_name` labels errors ("shard 2 worker", "coordinator").
class PipeTransport : public FrameTransport {
 public:
  PipeTransport(int read_fd, int write_fd, std::string peer_name);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  Status CloseSend() override;

 private:
  Status WriteFully(const uint8_t* data, size_t size);
  /// Reads exactly `size` bytes; `*eof` is set instead when 0 bytes were
  /// read at a clean boundary (caller decides whether that is an error).
  Status ReadFully(uint8_t* data, size_t size, bool* eof);

  int read_fd_;
  int write_fd_;
  std::string peer_name_;
};

/// \brief The synchronous in-process worker transport, coordinator side:
/// Send queues spec frames; CloseSend runs the worker job over them
/// (shard/worker.h) and queues its output; Recv replays the output.
class InProcessTransport : public FrameTransport {
 public:
  explicit InProcessTransport(std::string peer_name);

  Status Send(const Frame& frame) override;
  Result<Frame> Recv() override;
  Status CloseSend() override;

 private:
  std::string peer_name_;
  std::vector<Frame> inbox_;
  std::deque<Frame> outbox_;
  bool sealed_ = false;
};

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_TRANSPORT_H_
