// The shard planner: how one AllPairs join is split across N workers so
// that every qualifying pair is owned by exactly one shard and the merged
// output is byte-identical to the single-process join.
//
// The plan is built on the join's own canonical processing order — the
// JoinPlan `by_size` sequence (non-decreasing token-set size, ties by
// record id; see similarity/join_internal.h). Each shard *owns* one
// contiguous band of positions in that order, balanced by cumulative token
// count. Ownership of a pair follows the pair's LATER endpoint in the
// order: the endpoint that would probe the index in the single-process
// join. That makes ownership a pure function of the plan — no
// coordination, no duplicates.
//
// Completeness needs the earlier endpoint to be present on the owner
// shard, so each shard additionally receives a *replica* band: the
// contiguous run of positions directly below its owned band whose sizes
// are still admissible partners for some owned record. The band's lower
// edge comes from the same order-symmetric prefix-filtering bounds the
// join itself uses (internal::ComputePrefixBounds): any y qualifying with
// an owned record x has |y| >= min_partner(|x|), so taking
// m = min over owned non-empty records of min_partner(size) and shipping
// every earlier position of size >= m covers every possible earlier
// endpoint. Sizes are non-decreasing along the order, so that set is one
// contiguous position range found by binary search — the "deterministic
// replica routing" of the runtime.
//
// The ownership lemma the shard tests pin:
//   * every record is owned by exactly one shard (the owned bands
//     partition [0, n));
//   * every qualifying pair (threshold > 0) is emitted by exactly one
//     shard — the owner of its later endpoint, on which the earlier
//     endpoint is present as an owned record or a replica.
#ifndef CROWDER_SHARD_PLAN_H_
#define CROWDER_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "similarity/similarity_join.h"

namespace crowder {
namespace shard {

/// \brief One shard's slice of the by_size position order. Positions in
/// [replica_begin, owned_begin) are shipped as replicas (indexed, never
/// probed); positions in [owned_begin, owned_end) are owned (probed and
/// indexed). Invariant: replica_begin <= owned_begin <= owned_end.
struct ShardAssignment {
  uint64_t replica_begin = 0;
  uint64_t owned_begin = 0;
  uint64_t owned_end = 0;

  uint64_t num_owned() const { return owned_end - owned_begin; }
  uint64_t num_replicas() const { return owned_begin - replica_begin; }
};

/// \brief The full plan: the canonical processing order plus one
/// assignment per shard. Pure function of (input, options, num_shards) —
/// building it twice yields identical contents, which is what lets the
/// coordinator and the tests reason about the same bands.
struct ShardPlan {
  /// Record ids in non-decreasing token-set-size order, ties by id —
  /// byte-identical to the JoinPlan::by_size the single-process join
  /// builds over the same input.
  std::vector<uint32_t> by_size;
  /// Owned bands partition [0, by_size.size()); ascending, contiguous.
  std::vector<ShardAssignment> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }

  /// \brief The shard owning position `pos` (linear in num_shards).
  uint32_t OwnerOfPosition(uint64_t pos) const;
};

/// \brief Builds the plan. Requires 1 <= num_shards and a positive
/// threshold (at threshold <= 0 prefix filtering degenerates and the
/// sharded runtime refuses the job — the single-process exhaustive join is
/// the only exact implementation there). Owned bands are balanced by
/// cumulative token count (records weigh size + 1, so empty records still
/// move the balance); shards beyond the record count get empty bands.
Result<ShardPlan> BuildShardPlan(const similarity::JoinInput& input,
                                 const similarity::JoinOptions& options, uint32_t num_shards);

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_PLAN_H_
