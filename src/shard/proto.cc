#include "shard/proto.h"

#include <cstring>

namespace crowder {
namespace shard {

namespace {

// Little-endian writers. memcpy keeps them alias-safe; on the little-endian
// targets this runtime supports they compile to plain stores.
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<uint8_t>(v >> (8 * i));
  out->insert(out->end(), raw, raw + 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<uint8_t>(v >> (8 * i));
  out->insert(out->end(), raw, raw + 8);
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Bounds-checked reader over one payload.
class Cursor {
 public:
  explicit Cursor(const std::vector<uint8_t>& payload) : data_(payload.data()), size_(payload.size()) {}

  Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return Truncated();
    *v = data_[pos_++];
    return Status::OK();
  }
  Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return Truncated();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = out;
    return Status::OK();
  }
  Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return Truncated();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = out;
    return Status::OK();
  }
  Status ReadF64(double* v) {
    uint64_t bits = 0;
    CROWDER_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > size_) return Truncated();
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }
  size_t remaining() const { return size_ - pos_; }
  Status ExpectDone() const {
    if (pos_ != size_) {
      return Status::IOError("shard frame has " + std::to_string(size_ - pos_) +
                             " trailing payload bytes");
    }
    return Status::OK();
  }

 private:
  static Status Truncated() { return Status::IOError("shard frame payload truncated"); }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status ExpectType(const Frame& frame, FrameType want, const char* name) {
  if (frame.type != want) {
    return Status::IOError(std::string("expected ") + name + " frame, got type " +
                           std::to_string(static_cast<uint32_t>(frame.type)));
  }
  return Status::OK();
}

}  // namespace

Frame EncodeJobSpec(const JobSpec& spec) {
  Frame frame;
  frame.type = FrameType::kJobSpec;
  PutU32(&frame.payload, kShardMagic);
  PutU32(&frame.payload, kShardProtocolVersion);
  PutU32(&frame.payload, spec.shard_index);
  PutU32(&frame.payload, spec.num_shards);
  PutU32(&frame.payload, static_cast<uint32_t>(spec.measure));
  PutF64(&frame.payload, spec.threshold);
  PutU8(&frame.payload, spec.has_sources ? 1 : 0);
  PutU64(&frame.payload, spec.num_records);
  return frame;
}

Result<JobSpec> DecodeJobSpec(const Frame& frame) {
  CROWDER_RETURN_NOT_OK(ExpectType(frame, FrameType::kJobSpec, "kJobSpec"));
  Cursor c(frame.payload);
  uint32_t magic = 0, version = 0, measure = 0;
  uint8_t has_sources = 0;
  JobSpec spec;
  CROWDER_RETURN_NOT_OK(c.ReadU32(&magic));
  if (magic != kShardMagic) return Status::IOError("bad shard spec magic");
  CROWDER_RETURN_NOT_OK(c.ReadU32(&version));
  if (version != kShardProtocolVersion) {
    return Status::IOError("shard protocol version mismatch: peer speaks " +
                           std::to_string(version) + ", this binary speaks " +
                           std::to_string(kShardProtocolVersion));
  }
  CROWDER_RETURN_NOT_OK(c.ReadU32(&spec.shard_index));
  CROWDER_RETURN_NOT_OK(c.ReadU32(&spec.num_shards));
  CROWDER_RETURN_NOT_OK(c.ReadU32(&measure));
  spec.measure = static_cast<similarity::SetMeasure>(measure);
  CROWDER_RETURN_NOT_OK(c.ReadF64(&spec.threshold));
  CROWDER_RETURN_NOT_OK(c.ReadU8(&has_sources));
  spec.has_sources = has_sources != 0;
  CROWDER_RETURN_NOT_OK(c.ReadU64(&spec.num_records));
  CROWDER_RETURN_NOT_OK(c.ExpectDone());
  return spec;
}

void AppendRecordEntry(std::vector<uint8_t>* payload, uint32_t global_id, uint64_t position,
                       bool owned, int32_t source, const similarity::TokenSet& tokens) {
  PutU32(payload, global_id);
  PutU64(payload, position);
  PutU8(payload, owned ? 1 : 0);
  PutU32(payload, static_cast<uint32_t>(source));
  PutU32(payload, static_cast<uint32_t>(tokens.size()));
  for (const auto tok : tokens) PutU32(payload, static_cast<uint32_t>(tok));
}

Frame MakeRecordBatchFrame(uint32_t count, std::vector<uint8_t>&& entries_payload) {
  Frame frame;
  frame.type = FrameType::kRecordBatch;
  frame.payload.reserve(4 + entries_payload.size());
  PutU32(&frame.payload, count);
  frame.payload.insert(frame.payload.end(), entries_payload.begin(), entries_payload.end());
  return frame;
}

Frame EncodeRecordBatch(const std::vector<RecordEntry>& entries, size_t begin, size_t end) {
  std::vector<uint8_t> payload;
  for (size_t i = begin; i < end; ++i) {
    const RecordEntry& e = entries[i];
    AppendRecordEntry(&payload, e.global_id, e.position, e.owned, e.source, e.tokens);
  }
  return MakeRecordBatchFrame(static_cast<uint32_t>(end - begin), std::move(payload));
}

Result<std::vector<RecordEntry>> DecodeRecordBatch(const Frame& frame) {
  CROWDER_RETURN_NOT_OK(ExpectType(frame, FrameType::kRecordBatch, "kRecordBatch"));
  Cursor c(frame.payload);
  uint32_t count = 0;
  CROWDER_RETURN_NOT_OK(c.ReadU32(&count));
  std::vector<RecordEntry> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RecordEntry e;
    uint8_t owned = 0;
    uint32_t source = 0, num_tokens = 0;
    CROWDER_RETURN_NOT_OK(c.ReadU32(&e.global_id));
    CROWDER_RETURN_NOT_OK(c.ReadU64(&e.position));
    CROWDER_RETURN_NOT_OK(c.ReadU8(&owned));
    e.owned = owned != 0;
    CROWDER_RETURN_NOT_OK(c.ReadU32(&source));
    e.source = static_cast<int32_t>(source);
    CROWDER_RETURN_NOT_OK(c.ReadU32(&num_tokens));
    e.tokens.resize(num_tokens);
    for (uint32_t t = 0; t < num_tokens; ++t) {
      uint32_t tok = 0;
      CROWDER_RETURN_NOT_OK(c.ReadU32(&tok));
      e.tokens[t] = tok;
    }
    out.push_back(std::move(e));
  }
  CROWDER_RETURN_NOT_OK(c.ExpectDone());
  return out;
}

Frame EncodeJobSealed() {
  Frame frame;
  frame.type = FrameType::kJobSealed;
  return frame;
}

Frame EncodePairBatch(const std::vector<similarity::ScoredPair>& pairs, size_t begin, size_t end) {
  Frame frame;
  frame.type = FrameType::kPairBatch;
  PutU64(&frame.payload, end - begin);
  for (size_t i = begin; i < end; ++i) {
    PutU32(&frame.payload, pairs[i].a);
    PutU32(&frame.payload, pairs[i].b);
    PutF64(&frame.payload, pairs[i].score);
  }
  return frame;
}

Result<std::vector<similarity::ScoredPair>> DecodePairBatch(const Frame& frame) {
  CROWDER_RETURN_NOT_OK(ExpectType(frame, FrameType::kPairBatch, "kPairBatch"));
  Cursor c(frame.payload);
  uint64_t count = 0;
  CROWDER_RETURN_NOT_OK(c.ReadU64(&count));
  if (count * 16 > c.remaining()) return Status::IOError("shard pair batch count overruns payload");
  std::vector<similarity::ScoredPair> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    similarity::ScoredPair p;
    CROWDER_RETURN_NOT_OK(c.ReadU32(&p.a));
    CROWDER_RETURN_NOT_OK(c.ReadU32(&p.b));
    CROWDER_RETURN_NOT_OK(c.ReadF64(&p.score));
    out.push_back(p);
  }
  CROWDER_RETURN_NOT_OK(c.ExpectDone());
  return out;
}

Frame EncodeWorkerDone(const WorkerStats& stats) {
  Frame frame;
  frame.type = FrameType::kWorkerDone;
  PutU64(&frame.payload, stats.num_pairs);
  PutU64(&frame.payload, stats.pair_verifications);
  PutU64(&frame.payload, stats.owned_records);
  PutU64(&frame.payload, stats.replica_records);
  PutF64(&frame.payload, stats.wall_ms);
  PutF64(&frame.payload, stats.cpu_ms);
  PutU64(&frame.payload, stats.max_rss_kb);
  return frame;
}

Result<WorkerStats> DecodeWorkerDone(const Frame& frame) {
  CROWDER_RETURN_NOT_OK(ExpectType(frame, FrameType::kWorkerDone, "kWorkerDone"));
  Cursor c(frame.payload);
  WorkerStats stats;
  CROWDER_RETURN_NOT_OK(c.ReadU64(&stats.num_pairs));
  CROWDER_RETURN_NOT_OK(c.ReadU64(&stats.pair_verifications));
  CROWDER_RETURN_NOT_OK(c.ReadU64(&stats.owned_records));
  CROWDER_RETURN_NOT_OK(c.ReadU64(&stats.replica_records));
  CROWDER_RETURN_NOT_OK(c.ReadF64(&stats.wall_ms));
  CROWDER_RETURN_NOT_OK(c.ReadF64(&stats.cpu_ms));
  CROWDER_RETURN_NOT_OK(c.ReadU64(&stats.max_rss_kb));
  CROWDER_RETURN_NOT_OK(c.ExpectDone());
  return stats;
}

Frame EncodeWorkerError(const WorkerError& error) {
  Frame frame;
  frame.type = FrameType::kWorkerError;
  PutU32(&frame.payload, static_cast<uint32_t>(error.code));
  PutU32(&frame.payload, static_cast<uint32_t>(error.message.size()));
  frame.payload.insert(frame.payload.end(), error.message.begin(), error.message.end());
  return frame;
}

Result<WorkerError> DecodeWorkerError(const Frame& frame) {
  CROWDER_RETURN_NOT_OK(ExpectType(frame, FrameType::kWorkerError, "kWorkerError"));
  Cursor c(frame.payload);
  WorkerError error;
  uint32_t code = 0, len = 0;
  CROWDER_RETURN_NOT_OK(c.ReadU32(&code));
  error.code = static_cast<StatusCode>(code);
  CROWDER_RETURN_NOT_OK(c.ReadU32(&len));
  CROWDER_RETURN_NOT_OK(c.ReadBytes(len, &error.message));
  CROWDER_RETURN_NOT_OK(c.ExpectDone());
  return error;
}

}  // namespace shard
}  // namespace crowder
