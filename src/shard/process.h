// Subprocess management for the sharded runtime: fork/exec of the
// crowder_shardd worker binary with a pipe pair per worker, and the
// guard that guarantees no zombies and no hangs on error paths.
#ifndef CROWDER_SHARD_PROCESS_H_
#define CROWDER_SHARD_PROCESS_H_

#include <sys/types.h>

#include <memory>
#include <string>

#include "common/result.h"
#include "shard/transport.h"

namespace crowder {
namespace shard {

/// \brief One spawned worker: its pid and the coordinator-side transport
/// (worker stdin/stdout are the pipe ends). Movable, not copyable; if the
/// process was never reaped, the destructor SIGKILLs and reaps it — error
/// paths can simply drop the handle.
class WorkerProcess {
 public:
  WorkerProcess(pid_t pid, std::unique_ptr<FrameTransport> transport, std::string name);
  ~WorkerProcess();
  WorkerProcess(WorkerProcess&&) noexcept;
  WorkerProcess& operator=(WorkerProcess&&) noexcept;

  FrameTransport* transport() { return transport_.get(); }
  pid_t pid() const { return pid_; }

  /// Waits for the worker to exit; non-zero exit or a signal death is an
  /// IOError naming the worker. Idempotent.
  Status Wait();

 private:
  void KillAndReap();

  pid_t pid_;
  std::unique_ptr<FrameTransport> transport_;
  std::string name_;
  bool reaped_ = false;
};

/// \brief Spawns `worker_path` as shard `shard_index` of `num_shards`:
/// fork, wire a pipe pair to the child's stdin/stdout, exec
/// `worker_path worker <shard_index>`. Installs SIG_IGN for SIGPIPE once
/// per process (a dead worker must surface as an EPIPE IOError, not kill
/// the coordinator). The argv shard index is cosmetic (ps-visible); the
/// authoritative index travels in the kJobSpec frame.
Result<WorkerProcess> SpawnWorkerProcess(const std::string& worker_path, uint32_t shard_index,
                                         uint32_t num_shards);

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_PROCESS_H_
