#include "shard/plan.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "similarity/join_internal.h"

namespace crowder {
namespace shard {

uint32_t ShardPlan::OwnerOfPosition(uint64_t pos) const {
  for (uint32_t s = 0; s < shards.size(); ++s) {
    if (pos >= shards[s].owned_begin && pos < shards[s].owned_end) return s;
  }
  return num_shards() == 0 ? 0 : num_shards() - 1;
}

Result<ShardPlan> BuildShardPlan(const similarity::JoinInput& input,
                                 const similarity::JoinOptions& options, uint32_t num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " + std::to_string(num_shards));
  }
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument(
        "sharded join requires a positive threshold (prefix filtering degenerates at " +
        std::to_string(options.threshold) + ")");
  }
  CROWDER_RETURN_NOT_OK(similarity::ValidateJoin(input, options));

  const uint64_t n = input.sets.size();
  ShardPlan plan;

  // The canonical processing order, byte-identical to JoinPlan::by_size:
  // ranked_size(r) == |sets[r]| (re-ranking permutes tokens, never sizes),
  // and std::stable_sort over iota breaks ties by record id exactly as
  // BuildJoinPlan does.
  plan.by_size.resize(n);
  std::iota(plan.by_size.begin(), plan.by_size.end(), 0);
  std::stable_sort(plan.by_size.begin(), plan.by_size.end(), [&](uint32_t x, uint32_t y) {
    return input.sets[x].size() < input.sets[y].size();
  });

  // Cumulative weights along the order; weight = size + 1 so bands of empty
  // records still advance the balance point.
  std::vector<uint64_t> cum(n + 1, 0);
  for (uint64_t p = 0; p < n; ++p) {
    cum[p + 1] = cum[p] + input.sets[plan.by_size[p]].size() + 1;
  }
  const uint64_t total = cum[n];

  plan.shards.resize(num_shards);
  // Owned band s = positions whose cumulative weight falls in
  // [s, s + 1) / num_shards of the total — a deterministic partition of
  // [0, n) into contiguous, possibly empty bands.
  uint64_t begin = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint64_t target = (s + 1 == num_shards) ? total : total * (s + 1) / num_shards;
    uint64_t end = begin;
    while (end < n && cum[end + 1] <= target) ++end;
    // Never let a later band start past a nonzero target with nothing taken
    // when records remain and this is the last chance to take them.
    if (s + 1 == num_shards) end = n;
    plan.shards[s].owned_begin = begin;
    plan.shards[s].owned_end = end;
    begin = end;
  }

  // Replica bands: for each shard, the minimum admissible partner size over
  // its owned non-empty records (empty records never pair at a positive
  // threshold, so they neither need partners nor widen the band), then the
  // first position of at least that size — sizes are non-decreasing along
  // the order, so std::partition_point finds the contiguous lower edge.
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardAssignment& a = plan.shards[s];
    uint64_t min_partner = 0;
    bool any = false;
    for (uint64_t p = a.owned_begin; p < a.owned_end; ++p) {
      const size_t size = input.sets[plan.by_size[p]].size();
      if (size == 0) continue;
      const auto bounds =
          similarity::internal::ComputePrefixBounds(options.measure, options.threshold, size);
      if (!any || bounds.min_partner < min_partner) min_partner = bounds.min_partner;
      any = true;
    }
    if (!any) {
      a.replica_begin = a.owned_begin;
      continue;
    }
    const auto* first = plan.by_size.data();
    const auto* cut = std::partition_point(first, first + a.owned_begin, [&](uint32_t rec) {
      return input.sets[rec].size() < min_partner;
    });
    a.replica_begin = static_cast<uint64_t>(cut - first);
  }
  return plan;
}

}  // namespace shard
}  // namespace crowder
