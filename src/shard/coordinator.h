// The shard coordinator: plans the bands (plan.h), ships each worker its
// slice, and gathers the per-shard owned pair streams.
//
// Output contract (what makes the downstream k-way merge exact): the sink
// receives blocks where
//   * every block is internally (a, b)-sorted — each is a contiguous
//     chunk of one shard's sorted owned pair list;
//   * the pair sets of different shards are disjoint (the ownership
//     lemma, plan.h);
//   * the union over all blocks is exactly the single-process
//     AllPairsJoin pair set, scores bitwise equal (worker.h).
// Feeding the blocks to core::PairStream and scanning sorted therefore
// reproduces the single-process SortPairs order byte-for-byte — the merge
// and the proof are the ones the streaming pipeline already uses; this
// module only has to hand over blocks that satisfy the same contract.
//
// I/O schedule (deadlock-free on blocking pipes): specs are written to
// workers 0..N-1 sequentially, then result streams are read back in the
// same order. A worker never writes before its spec is sealed and the
// coordinator never reads before all specs are sealed, so the only
// blocking edge at any moment is coordinator -> one worker — no cycle.
// Workers overlap freely: shard 0 joins while shard 3's spec is still
// being written, and blocked result pipes simply park finished workers.
#ifndef CROWDER_SHARD_COORDINATOR_H_
#define CROWDER_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "shard/plan.h"
#include "shard/proto.h"
#include "shard/transport.h"

namespace crowder {
namespace shard {

/// \brief How a sharded join is executed.
struct ShardExecOptions {
  /// Number of worker shards (>= 1).
  uint32_t num_shards = 1;
  /// Path to the crowder_shardd binary; empty runs every worker in-process
  /// through InProcessTransport (same bytes, no subprocesses).
  std::string worker_path;
  /// Records per kRecordBatch spec frame.
  uint32_t records_per_frame = 4096;
  /// Test hook: overrides transport creation for shard i (fault injection).
  /// When set, worker_path is ignored.
  std::function<Result<std::unique_ptr<FrameTransport>>(uint32_t shard)> transport_factory;
};

/// \brief Per-shard statistics, in shard order, plus coordinator-side
/// timings. Informational only — never part of the byte-identity contract.
struct ShardRunStats {
  std::vector<WorkerStats> shards;
  double plan_wall_ms = 0.0;
  /// Writing the specs (serialization + pipe writes).
  double ship_wall_ms = 0.0;
  /// Reading + decoding the result streams (includes worker compute the
  /// coordinator waited out).
  double gather_wall_ms = 0.0;
  uint64_t total_pairs = 0;
  bool subprocess = false;
};

/// \brief Receives the gathered pair blocks (see the header contract).
/// A non-OK return aborts the run with that status.
using ShardPairSink = std::function<Status(std::vector<similarity::ScoredPair>&&)>;

/// \brief Runs the sharded join end to end. Requires threshold > 0 and
/// exec.num_shards >= 1. Any worker failure — a kWorkerError frame, a
/// died subprocess (EOF / EPIPE / non-zero exit), a corrupt stream —
/// returns a clean Status naming the shard; spawned workers are always
/// reaped (no zombies, no hangs). `stats` may be nullptr.
Status RunShardedJoin(const similarity::JoinInput& input,
                      const similarity::JoinOptions& options, const ShardExecOptions& exec,
                      const ShardPairSink& sink, ShardRunStats* stats);

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_COORDINATOR_H_
