#include "shard/worker.h"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "similarity/join_internal.h"

namespace crowder {
namespace shard {

namespace {

double RusageCpuMs(const rusage& ru) {
  const auto tv_ms = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1e3 + static_cast<double>(tv.tv_usec) * 1e-3;
  };
  return tv_ms(ru.ru_utime) + tv_ms(ru.ru_stime);
}

}  // namespace

Status ShardWorkerJob::Feed(const Frame& frame) {
  if (sealed_) return Status::IOError("shard job frame after kJobSealed");
  switch (frame.type) {
    case FrameType::kJobSpec: {
      if (have_spec_) return Status::IOError("duplicate kJobSpec frame");
      CROWDER_ASSIGN_OR_RETURN(spec_, DecodeJobSpec(frame));
      have_spec_ = true;
      global_ids_.reserve(spec_.num_records);
      positions_.reserve(spec_.num_records);
      owned_.reserve(spec_.num_records);
      input_.sets.reserve(spec_.num_records);
      return Status::OK();
    }
    case FrameType::kRecordBatch: {
      if (!have_spec_) return Status::IOError("kRecordBatch before kJobSpec");
      CROWDER_ASSIGN_OR_RETURN(auto entries, DecodeRecordBatch(frame));
      for (auto& e : entries) {
        if (!positions_.empty() && e.position <= positions_.back()) {
          return Status::IOError("shard spec records out of position order");
        }
        global_ids_.push_back(e.global_id);
        positions_.push_back(e.position);
        owned_.push_back(e.owned ? 1 : 0);
        input_.sets.push_back(std::move(e.tokens));
        if (spec_.has_sources) input_.sources.push_back(e.source);
      }
      return Status::OK();
    }
    case FrameType::kJobSealed: {
      if (!have_spec_) return Status::IOError("kJobSealed before kJobSpec");
      sealed_ = true;
      return Status::OK();
    }
    default:
      return Status::IOError("unexpected frame type " +
                             std::to_string(static_cast<uint32_t>(frame.type)) +
                             " in shard job spec");
  }
}

Result<std::vector<Frame>> ShardWorkerJob::ExecuteOrError(size_t pairs_per_frame) {
  if (!sealed_) return Status::Internal("shard job executed before kJobSealed");
  if (global_ids_.size() != spec_.num_records) {
    return Status::IOError("shard spec promised " + std::to_string(spec_.num_records) +
                           " records, received " + std::to_string(global_ids_.size()));
  }
  const similarity::JoinOptions options{spec_.measure, spec_.threshold};
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument("shard worker requires a positive threshold");
  }
  CROWDER_RETURN_NOT_OK(similarity::ValidateJoin(input_, options));
  // Records arrive in ascending global by_size-position order, which is
  // non-decreasing in size — the local stable sort must be the identity so
  // the local processing order is the global order restricted to this slice.
  for (size_t i = 1; i < input_.sets.size(); ++i) {
    if (input_.sets[i].size() < input_.sets[i - 1].size()) {
      return Status::IOError("shard spec records not in size order");
    }
  }

  const auto wall_begin = std::chrono::steady_clock::now();
  rusage ru_begin{};
  getrusage(RUSAGE_SELF, &ru_begin);

  WorkerStats stats;
  std::vector<similarity::ScoredPair> out;
  const uint32_t n = static_cast<uint32_t>(input_.sets.size());
  if (n > 0) {
    // The AllPairs loop of similarity_join.cc with the owned-probe
    // restriction. The plan re-ranks tokens by LOCAL frequency — a
    // different bijection than the global join's, which changes candidate
    // generation but never the verified overlap, sizes, or score (the
    // order-symmetric lemma of join_internal.h holds under any one total
    // token order).
    const similarity::internal::JoinPlan plan =
        similarity::internal::BuildJoinPlan(input_, options);
    std::vector<std::vector<uint32_t>> postings(plan.num_ranks);
    std::vector<uint32_t> candidates;
    std::vector<char> seen(n, 0);
    for (uint32_t rec : plan.by_size) {
      const similarity::TokenSpan tokens = plan.ranked(rec);
      if (tokens.empty()) continue;
      const size_t prefix_len = plan.prefix_len[rec];
      if (owned_[rec]) {
        const size_t min_partner = plan.min_partner[rec];
        candidates.clear();
        for (size_t p = 0; p < prefix_len; ++p) {
          for (uint32_t other : postings[tokens[p]]) {
            if (seen[other]) continue;
            seen[other] = 1;
            candidates.push_back(other);
          }
        }
        for (uint32_t other : candidates) {
          seen[other] = 0;
          if (plan.ranked_size(other) < min_partner) continue;
          if (!similarity::internal::Admissible(input_, rec, other)) continue;
          ++stats.pair_verifications;
          double sim;
          if (similarity::internal::VerifyPair(options.measure, options.threshold, tokens,
                                               plan.ranked(other), &sim)) {
            const uint32_t ga = global_ids_[rec];
            const uint32_t gb = global_ids_[other];
            out.push_back({std::min(ga, gb), std::max(ga, gb), sim});
          }
        }
      }
      for (size_t p = 0; p < prefix_len; ++p) postings[tokens[p]].push_back(rec);
    }
  }
  // Canonical output order: global (a, b) ascending, so every kPairBatch
  // frame is a contiguous chunk of a sorted sequence (the PairStream
  // k-way-merge contract on the coordinator side).
  similarity::SortPairs(&out);

  const auto wall_end = std::chrono::steady_clock::now();
  rusage ru_end{};
  getrusage(RUSAGE_SELF, &ru_end);
  stats.num_pairs = out.size();
  for (uint8_t o : owned_) {
    if (o) ++stats.owned_records;
  }
  stats.replica_records = owned_.size() - stats.owned_records;
  stats.wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_begin).count();
  stats.cpu_ms = RusageCpuMs(ru_end) - RusageCpuMs(ru_begin);
  stats.max_rss_kb = static_cast<uint64_t>(ru_end.ru_maxrss);

  std::vector<Frame> frames;
  if (pairs_per_frame == 0) pairs_per_frame = 65536;
  for (size_t begin = 0; begin < out.size(); begin += pairs_per_frame) {
    const size_t end = std::min(out.size(), begin + pairs_per_frame);
    frames.push_back(EncodePairBatch(out, begin, end));
  }
  frames.push_back(EncodeWorkerDone(stats));
  return frames;
}

std::vector<Frame> ShardWorkerJob::Execute(size_t pairs_per_frame) {
  auto result = ExecuteOrError(pairs_per_frame);
  if (result.ok()) return std::move(result).ValueOrDie();
  WorkerError error;
  error.code = result.status().code();
  error.message = result.status().message();
  return {EncodeWorkerError(error)};
}

Status RunShardWorker(FrameTransport* transport) {
  ShardWorkerJob job;
  Status feed_status;
  while (!job.sealed()) {
    auto frame = transport->Recv();
    if (!frame.ok()) return frame.status();
    feed_status = job.Feed(frame.ValueOrDie());
    if (!feed_status.ok()) break;
  }
  std::vector<Frame> frames;
  if (feed_status.ok()) {
    frames = job.Execute();
  } else {
    WorkerError error;
    error.code = feed_status.code();
    error.message = feed_status.message();
    frames.push_back(EncodeWorkerError(error));
  }
  for (const Frame& frame : frames) {
    CROWDER_RETURN_NOT_OK(transport->Send(frame));
  }
  return transport->CloseSend();
}

}  // namespace shard
}  // namespace crowder
