// The shard worker: consumes one job spec (proto.h frames), runs the
// prefix-filtering join over its slice, and produces the shard's owned
// pair list plus run statistics.
//
// The join is the single-process AllPairs algorithm with one restriction:
// only OWNED records probe the inverted index; replicas are indexed but
// never probe. Records arrive in ascending global by_size-position order,
// so the local processing order is the global order restricted to the
// slice — the record that probes for a pair locally is exactly the record
// that probes for it in the single-process join. Combined with
// internal::VerifyPair being a pure function of (sizes, overlap) — and a
// token-rank bijection preserving both — every emitted score is bitwise
// the single-process score, and the emitted pair set is exactly the pairs
// this shard owns (probe side owned ⇔ later endpoint owned).
#ifndef CROWDER_SHARD_WORKER_H_
#define CROWDER_SHARD_WORKER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "shard/proto.h"
#include "shard/transport.h"

namespace crowder {
namespace shard {

/// \brief Accumulates one job from decoded spec frames, then executes it.
/// Frame order: kJobSpec, kRecordBatch*, kJobSealed. Invalid jobs (bad
/// frame order, positions out of order, token sets unsorted) surface from
/// Execute as a single kWorkerError frame — the transport stays healthy so
/// the coordinator reads a clean error instead of an EOF.
class ShardWorkerJob {
 public:
  /// Feeds one spec frame. Returns IOError on malformed frames or
  /// protocol-order violations.
  Status Feed(const Frame& frame);

  /// True once kJobSealed was fed.
  bool sealed() const { return sealed_; }

  /// Runs the join and returns the result stream: kPairBatch frames of at
  /// most `pairs_per_frame` pairs (each a contiguous chunk of the shard's
  /// (a, b)-sorted owned pair list) followed by kWorkerDone — or a single
  /// kWorkerError frame when the job was invalid.
  std::vector<Frame> Execute(size_t pairs_per_frame = 65536);

 private:
  Result<std::vector<Frame>> ExecuteOrError(size_t pairs_per_frame);

  JobSpec spec_;
  bool have_spec_ = false;
  bool sealed_ = false;
  std::vector<uint32_t> global_ids_;
  std::vector<uint64_t> positions_;
  std::vector<uint8_t> owned_;
  similarity::JoinInput input_;
};

/// \brief The crowder_shardd main loop: Recv spec frames until kJobSealed,
/// execute, Send every result frame, CloseSend. Job-level failures travel
/// to the coordinator as kWorkerError frames (and return OK here);
/// transport failures — the coordinator died — are returned.
Status RunShardWorker(FrameTransport* transport);

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_WORKER_H_
