#include "shard/transport.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "shard/worker.h"

namespace crowder {
namespace shard {

namespace {

void PutU32Raw(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU64Raw(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint32_t GetU32Raw(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}
uint64_t GetU64Raw(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

PipeTransport::PipeTransport(int read_fd, int write_fd, std::string peer_name)
    : read_fd_(read_fd), write_fd_(write_fd), peer_name_(std::move(peer_name)) {}

PipeTransport::~PipeTransport() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

Status PipeTransport::WriteFully(const uint8_t* data, size_t size) {
  if (write_fd_ < 0) return Status::IOError(peer_name_ + ": send side already closed");
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(write_fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE is the normal shape of "the peer died with frames in flight"
      // (SIGPIPE is ignored by the spawner; see process.cc).
      return Status::IOError(peer_name_ + ": pipe write failed: " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PipeTransport::ReadFully(uint8_t* data, size_t size, bool* eof) {
  *eof = false;
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(read_fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(peer_name_ + ": pipe read failed: " + std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError(peer_name_ + ": stream truncated mid-frame (peer died?)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PipeTransport::Send(const Frame& frame) {
  uint8_t header[12];
  PutU32Raw(header, static_cast<uint32_t>(frame.type));
  PutU64Raw(header + 4, frame.payload.size());
  CROWDER_RETURN_NOT_OK(WriteFully(header, sizeof(header)));
  return WriteFully(frame.payload.data(), frame.payload.size());
}

Result<Frame> PipeTransport::Recv() {
  uint8_t header[12];
  bool eof = false;
  CROWDER_RETURN_NOT_OK(ReadFully(header, sizeof(header), &eof));
  if (eof) {
    // The protocol ends with a terminal frame, so even a clean EOF means
    // the peer exited without finishing its stream.
    return Status::IOError(peer_name_ + ": stream ended without a terminal frame (peer died?)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(GetU32Raw(header));
  const uint64_t payload_len = GetU64Raw(header + 4);
  if (payload_len > kMaxFramePayload) {
    return Status::IOError(peer_name_ + ": corrupt frame (payload of " +
                           std::to_string(payload_len) + " bytes)");
  }
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    CROWDER_RETURN_NOT_OK(ReadFully(frame.payload.data(), payload_len, &eof));
    if (eof) {
      return Status::IOError(peer_name_ + ": stream truncated mid-frame (peer died?)");
    }
  }
  return frame;
}

Status PipeTransport::CloseSend() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
  return Status::OK();
}

InProcessTransport::InProcessTransport(std::string peer_name)
    : peer_name_(std::move(peer_name)) {}

Status InProcessTransport::Send(const Frame& frame) {
  if (sealed_) return Status::IOError(peer_name_ + ": send side already closed");
  inbox_.push_back(frame);
  return Status::OK();
}

Status InProcessTransport::CloseSend() {
  if (sealed_) return Status::OK();
  sealed_ = true;
  // Run the worker synchronously over the queued spec. Job-level failures
  // become kWorkerError frames inside Execute — exactly what a subprocess
  // worker would have written — so the coordinator's handling is identical
  // across transports.
  ShardWorkerJob job;
  Status feed_status;
  for (const Frame& frame : inbox_) {
    feed_status = job.Feed(frame);
    if (!feed_status.ok()) break;
    if (job.sealed()) break;
  }
  if (feed_status.ok() && !job.sealed()) {
    feed_status = Status::IOError(peer_name_ + ": spec ended without kJobSealed");
  }
  std::vector<Frame> frames;
  if (feed_status.ok()) {
    frames = job.Execute();
  } else {
    WorkerError error;
    error.code = feed_status.code();
    error.message = feed_status.message();
    frames.push_back(EncodeWorkerError(error));
  }
  inbox_.clear();
  for (Frame& frame : frames) outbox_.push_back(std::move(frame));
  return Status::OK();
}

Result<Frame> InProcessTransport::Recv() {
  if (outbox_.empty()) {
    return Status::IOError(peer_name_ + ": stream ended without a terminal frame (peer died?)");
  }
  Frame frame = std::move(outbox_.front());
  outbox_.pop_front();
  return frame;
}

}  // namespace shard
}  // namespace crowder
