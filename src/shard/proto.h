// The wire protocol between the shard coordinator and its workers:
// length-prefixed binary frames, the same bytes over a pipe (subprocess
// workers) or an in-memory queue (in-process workers and tests).
//
// Frame wire format (all integers little-endian):
//
//   u32 frame type | u64 payload length | payload bytes
//
// A job flows in one direction per phase. Coordinator -> worker:
//
//   kJobSpec      magic, protocol version, shard index / count, measure,
//                 threshold (IEEE-754 bits — the worker verifies with the
//                 coordinator's exact double), source-label flag, record
//                 count.
//   kRecordBatch* records in ascending by_size-position order: global id,
//                 position, owned flag, source label, token list (global
//                 token ids — workers re-rank locally; the rank map is a
//                 bijection, so overlaps and therefore scores are exact).
//   kJobSealed    end of spec; the worker starts joining.
//
// Worker -> coordinator:
//
//   kPairBatch*   contiguous chunks of the shard's (a, b)-sorted owned
//                 pair list — global record ids, score as IEEE-754 bits
//                 (bitwise, not approximately, the single-process score).
//   kWorkerDone   terminal: per-shard counters (pairs, verifications,
//                 owned/replica record counts) and wall/CPU/RSS.
//   kWorkerError  terminal: a StatusCode and message instead of results.
//
// Every stream ends with a terminal frame; an EOF anywhere else is a
// transport error (how a killed worker surfaces — see transport.h).
#ifndef CROWDER_SHARD_PROTO_H_
#define CROWDER_SHARD_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "similarity/similarity_join.h"

namespace crowder {
namespace shard {

/// \brief Spec magic ("CRSH") — first field of every kJobSpec payload.
inline constexpr uint32_t kShardMagic = 0x43525348u;
/// \brief Protocol version; bumped on any wire-format change.
inline constexpr uint32_t kShardProtocolVersion = 1;
/// \brief Upper bound on a frame payload — anything larger is treated as a
/// corrupt stream by the transports.
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 34;

enum class FrameType : uint32_t {
  kJobSpec = 1,
  kRecordBatch = 2,
  kJobSealed = 3,
  kPairBatch = 4,
  kWorkerDone = 5,
  kWorkerError = 6,
};

/// \brief One protocol frame: a type tag and its payload bytes.
struct Frame {
  FrameType type = FrameType::kJobSpec;
  std::vector<uint8_t> payload;
};

/// \brief The kJobSpec payload.
struct JobSpec {
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  similarity::SetMeasure measure = similarity::SetMeasure::kJaccard;
  double threshold = 0.0;
  /// Whether records carry source labels (cross-source joins).
  bool has_sources = false;
  /// Total records this worker will receive (owned + replicas).
  uint64_t num_records = 0;
};

/// \brief One record of a kRecordBatch payload.
struct RecordEntry {
  /// Record id in the coordinator's JoinInput (the id space of the output).
  uint32_t global_id = 0;
  /// Position in the global by_size order (spec batches are ascending).
  uint64_t position = 0;
  /// Owned records probe and index; replicas only index.
  bool owned = false;
  /// Source label; meaningful only when the spec has has_sources.
  int32_t source = 0;
  /// The record's token set (sorted, deduplicated global token ids).
  similarity::TokenSet tokens;
};

/// \brief The kWorkerDone payload: what one worker reports about its run.
struct WorkerStats {
  uint64_t num_pairs = 0;
  uint64_t pair_verifications = 0;
  uint64_t owned_records = 0;
  uint64_t replica_records = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  /// Peak RSS of the worker process in KiB (getrusage; for in-process
  /// workers this is the host process — documented, not subtracted).
  uint64_t max_rss_kb = 0;
};

/// \brief The kWorkerError payload.
struct WorkerError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

// ---- Encoders (append to a frame payload). ----

Frame EncodeJobSpec(const JobSpec& spec);
/// Encodes `entries[begin, end)` as one kRecordBatch frame.
Frame EncodeRecordBatch(const std::vector<RecordEntry>& entries, size_t begin, size_t end);
/// Streaming encoder used by the coordinator: appends one record to a
/// batch payload under construction (the batch starts with AppendBatchCount).
void AppendRecordEntry(std::vector<uint8_t>* payload, uint32_t global_id, uint64_t position,
                       bool owned, int32_t source, const similarity::TokenSet& tokens);
Frame MakeRecordBatchFrame(uint32_t count, std::vector<uint8_t>&& entries_payload);
Frame EncodeJobSealed();
/// Encodes `pairs[begin, end)` as one kPairBatch frame.
Frame EncodePairBatch(const std::vector<similarity::ScoredPair>& pairs, size_t begin, size_t end);
Frame EncodeWorkerDone(const WorkerStats& stats);
Frame EncodeWorkerError(const WorkerError& error);

// ---- Decoders (validate lengths; reject trailing bytes). ----

Result<JobSpec> DecodeJobSpec(const Frame& frame);
Result<std::vector<RecordEntry>> DecodeRecordBatch(const Frame& frame);
Result<std::vector<similarity::ScoredPair>> DecodePairBatch(const Frame& frame);
Result<WorkerStats> DecodeWorkerDone(const Frame& frame);
Result<WorkerError> DecodeWorkerError(const Frame& frame);

}  // namespace shard
}  // namespace crowder

#endif  // CROWDER_SHARD_PROTO_H_
