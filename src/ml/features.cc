#include "ml/features.h"

#include "common/logging.h"
#include "similarity/edit_distance.h"

namespace crowder {
namespace ml {

Result<PairFeaturizer> PairFeaturizer::Create(
    const std::vector<std::vector<std::string>>& records, std::vector<size_t> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("at least one attribute required");
  }
  for (size_t r = 0; r < records.size(); ++r) {
    for (size_t attr : attributes) {
      if (attr >= records[r].size()) {
        return Status::OutOfRange("record " + std::to_string(r) + " has no attribute " +
                                  std::to_string(attr));
      }
    }
  }

  PairFeaturizer f;
  f.attributes_ = std::move(attributes);
  f.normalized_.resize(f.attributes_.size());
  f.vectors_.resize(f.attributes_.size());

  text::Tokenizer tokenizer;
  for (size_t slot = 0; slot < f.attributes_.size(); ++slot) {
    const size_t attr = f.attributes_[slot];
    // One vocabulary per attribute: IDF weights are attribute-specific
    // ("new" is common in product names but rare in cities).
    text::Vocabulary vocab;
    std::vector<std::vector<text::TokenId>> docs;
    docs.reserve(records.size());
    f.normalized_[slot].reserve(records.size());
    for (const auto& rec : records) {
      const std::string norm = tokenizer.normalizer().Normalize(rec[attr]);
      f.normalized_[slot].push_back(norm);
      docs.push_back(vocab.InternDocument(tokenizer.Tokenize(rec[attr])));
    }
    text::TfIdfVectorizer vectorizer(&vocab);
    f.vectors_[slot].reserve(records.size());
    for (const auto& doc : docs) {
      f.vectors_[slot].push_back(vectorizer.Vectorize(doc));
    }
  }
  return f;
}

std::vector<double> PairFeaturizer::Features(uint32_t a, uint32_t b) const {
  std::vector<double> out;
  out.reserve(dim());
  for (size_t slot = 0; slot < attributes_.size(); ++slot) {
    CROWDER_CHECK_LT(static_cast<size_t>(a), normalized_[slot].size());
    CROWDER_CHECK_LT(static_cast<size_t>(b), normalized_[slot].size());
    out.push_back(similarity::EditSimilarity(normalized_[slot][a], normalized_[slot][b]));
    out.push_back(text::TfIdfVectorizer::Cosine(vectors_[slot][a], vectors_[slot][b]));
  }
  return out;
}

}  // namespace ml
}  // namespace crowder
