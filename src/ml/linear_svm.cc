#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace crowder {
namespace ml {

Status LinearSvm::Train(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
                        const SvmOptions& options) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  const size_t dim = x[0].size();
  size_t num_pos = 0;
  size_t num_neg = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != dim) return Status::InvalidArgument("ragged feature rows");
    if (y[i] == 1) {
      ++num_pos;
    } else if (y[i] == -1) {
      ++num_neg;
    } else {
      return Status::InvalidArgument("labels must be +1 or -1");
    }
  }
  if (num_pos == 0 || num_neg == 0) {
    return Status::InvalidArgument("need at least one example of each class");
  }
  if (options.lambda <= 0.0) return Status::InvalidArgument("lambda must be positive");

  const double pos_weight = options.positive_weight > 0.0
                                ? options.positive_weight
                                : static_cast<double>(num_neg) / static_cast<double>(num_pos);

  Rng rng(options.seed);
  std::vector<double> w(dim, 0.0);
  double b = 0.0;
  std::vector<double> w_avg(dim, 0.0);
  double b_avg = 0.0;
  uint64_t avg_count = 0;

  const uint64_t total_steps =
      static_cast<uint64_t>(options.epochs) * static_cast<uint64_t>(x.size());
  const uint64_t avg_from = total_steps / 2;  // average the second half

  for (uint64_t t = 1; t <= total_steps; ++t) {
    const size_t i = static_cast<size_t>(rng.Uniform(x.size()));
    const double eta = 1.0 / (options.lambda * static_cast<double>(t));
    const double label = static_cast<double>(y[i]);
    const double weight = y[i] == 1 ? pos_weight : 1.0;

    double margin = b;
    for (size_t d = 0; d < dim; ++d) margin += w[d] * x[i][d];
    margin *= label;

    // w <- (1 - eta*lambda) w  [+ eta*weight*label*x if hinge active]
    const double shrink = 1.0 - eta * options.lambda;
    for (size_t d = 0; d < dim; ++d) w[d] *= shrink;
    if (margin < 1.0) {
      const double step = eta * weight * label;
      for (size_t d = 0; d < dim; ++d) w[d] += step * x[i][d];
      b += step;  // unregularized bias
    }

    if (t > avg_from) {
      for (size_t d = 0; d < dim; ++d) w_avg[d] += w[d];
      b_avg += b;
      ++avg_count;
    }
  }

  w_ = std::move(w_avg);
  for (double& wd : w_) wd /= static_cast<double>(avg_count);
  b_ = b_avg / static_cast<double>(avg_count);
  return Status::OK();
}

double LinearSvm::Score(const std::vector<double>& x) const {
  CROWDER_CHECK(trained());
  CROWDER_CHECK_EQ(x.size(), w_.size());
  double s = b_;
  for (size_t d = 0; d < x.size(); ++d) s += w_[d] * x[d];
  return s;
}

}  // namespace ml
}  // namespace crowder
