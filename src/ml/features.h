// Feature extraction for the learning-based ER baseline (§7.3): a record
// pair becomes a feature vector with, per chosen attribute, the normalized
// edit similarity and the TF-IDF cosine similarity of the attribute values —
// the two similarity functions of Köpcke et al. [18] that the paper adopts.
// Restaurant (4 attributes) gives an 8-dim vector; Product (Name only) 2-dim.
#ifndef CROWDER_ML_FEATURES_H_
#define CROWDER_ML_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace crowder {
namespace ml {

/// \brief Precomputes per-record representations so that pair feature
/// extraction is O(record length), and exposes Features(a, b).
class PairFeaturizer {
 public:
  /// \param records records[i][attr] = raw attribute string of record i.
  /// \param attributes which attribute indices participate (e.g. {0} for
  ///        Product Name; {0,1,2,3} for Restaurant). Must be non-empty and
  ///        within every record's attribute count.
  static Result<PairFeaturizer> Create(const std::vector<std::vector<std::string>>& records,
                                       std::vector<size_t> attributes);

  /// Feature vector of the pair: [edit(a0), cosine(a0), edit(a1), ...].
  std::vector<double> Features(uint32_t a, uint32_t b) const;

  /// 2 * #attributes.
  size_t dim() const { return 2 * attributes_.size(); }
  size_t num_records() const { return normalized_.empty() ? 0 : normalized_[0].size(); }

 private:
  PairFeaturizer() = default;

  std::vector<size_t> attributes_;
  // Indexed [attribute_slot][record].
  std::vector<std::vector<std::string>> normalized_;
  std::vector<std::vector<text::SparseVector>> vectors_;
};

}  // namespace ml
}  // namespace crowder

#endif  // CROWDER_ML_FEATURES_H_
