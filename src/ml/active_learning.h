// Active learning for ER (uncertainty sampling with the linear SVM) — the
// human-in-the-loop alternative CrowdER's related work (§8) contrasts with:
// Sarawagi & Bhamidipaty [24] and Arasu et al. [1] reduce the *training set*
// a learner needs by asking people to label only the most informative pairs,
// whereas CrowdER asks people to verify candidate pairs directly. This
// module lets the repository compare both philosophies under the same
// simulated labeler budget (see bench_ablation_active).
#ifndef CROWDER_ML_ACTIVE_LEARNING_H_
#define CROWDER_ML_ACTIVE_LEARNING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "ml/linear_svm.h"
#include "ml/scaler.h"

namespace crowder {
namespace ml {

struct ActiveLearningOptions {
  /// Random pairs labeled before the first model exists. If the seed sample
  /// lacks one of the classes, additional random pairs are drawn until both
  /// appear (or the label budget runs out).
  size_t initial_sample = 20;
  /// Pairs labeled per uncertainty-sampling round.
  size_t batch_size = 20;
  /// Total label budget (including the initial sample).
  size_t max_labels = 200;
  uint64_t seed = 23;
  SvmOptions svm;
};

struct ActiveLearningResult {
  LinearSvm model;
  StandardScaler scaler;
  /// Which feature rows were labeled, in acquisition order.
  std::vector<size_t> labeled;
  size_t rounds = 0;
  /// Scores for every input row under the final model.
  std::vector<double> scores;
};

/// \brief Runs pool-based active learning over `features` (one row per
/// candidate pair). `oracle(i)` returns the true label of row i (a person,
/// the crowd, or ground truth in simulation); it is called exactly once per
/// labeled row. Returns the final model and per-row scores.
Result<ActiveLearningResult> RunActiveLearning(
    const std::vector<std::vector<double>>& features,
    const std::function<bool(size_t)>& oracle, const ActiveLearningOptions& options = {});

}  // namespace ml
}  // namespace crowder

#endif  // CROWDER_ML_ACTIVE_LEARNING_H_
