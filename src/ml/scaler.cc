#include "ml/scaler.h"

#include <cmath>

#include "common/logging.h"

namespace crowder {
namespace ml {

Status StandardScaler::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::InvalidArgument("cannot fit scaler on empty data");
  const size_t dim = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != dim) return Status::InvalidArgument("ragged feature rows");
  }
  means_.assign(dim, 0.0);
  stddevs_.assign(dim, 0.0);
  for (const auto& row : rows) {
    for (size_t d = 0; d < dim; ++d) means_[d] += row[d];
  }
  for (double& m : means_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (size_t d = 0; d < dim; ++d) {
      const double delta = row[d] - means_[d];
      stddevs_[d] += delta * delta;
    }
  }
  for (double& s : stddevs_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 0.0;  // constant dimension
  }
  return Status::OK();
}

void StandardScaler::Transform(std::vector<double>* row) const {
  CROWDER_CHECK(fitted());
  CROWDER_CHECK_EQ(row->size(), means_.size());
  for (size_t d = 0; d < row->size(); ++d) {
    (*row)[d] = stddevs_[d] == 0.0 ? 0.0 : ((*row)[d] - means_[d]) / stddevs_[d];
  }
}

std::vector<double> StandardScaler::Transformed(std::vector<double> row) const {
  Transform(&row);
  return row;
}

}  // namespace ml
}  // namespace crowder
