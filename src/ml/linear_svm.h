// Linear SVM trained with the Pegasos stochastic sub-gradient method
// (Shalev-Shwartz et al.), with class weighting for the heavy match /
// non-match imbalance of ER training sets and weight averaging for
// stability. The paper's SVM baseline (§7.3) ranks candidate pairs by
// classifier score; on 2-8 dimensional similarity features a linear model
// is exactly that setting.
#ifndef CROWDER_ML_LINEAR_SVM_H_
#define CROWDER_ML_LINEAR_SVM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace crowder {
namespace ml {

struct SvmOptions {
  double lambda = 1e-3;  ///< L2 regularization strength
  int epochs = 40;       ///< passes over the training set
  uint64_t seed = 17;
  /// Weight multiplier for positive (match) examples. <= 0 selects the
  /// balanced heuristic #neg / #pos automatically.
  double positive_weight = 0.0;
};

/// \brief A trained linear scorer: Score(x) = w·x + b. Larger = more likely
/// a match. Decision threshold 0 for classification; ranking uses raw score.
class LinearSvm {
 public:
  /// Trains on rows `x` with labels `y` in {+1, -1}. Requires at least one
  /// example of each class and consistent dimensionality.
  Status Train(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
               const SvmOptions& options = {});

  double Score(const std::vector<double>& x) const;
  bool Predict(const std::vector<double>& x) const { return Score(x) > 0.0; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }
  bool trained() const { return !w_.empty(); }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace ml
}  // namespace crowder

#endif  // CROWDER_ML_LINEAR_SVM_H_
