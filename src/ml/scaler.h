// Feature standardization (zero mean, unit variance), fit on training data
// and applied to both training and scoring inputs.
#ifndef CROWDER_ML_SCALER_H_
#define CROWDER_ML_SCALER_H_

#include <vector>

#include "common/result.h"

namespace crowder {
namespace ml {

/// \brief Per-dimension standardizer. Constant dimensions map to zero.
class StandardScaler {
 public:
  /// Computes means and standard deviations from `rows` (all same length,
  /// at least one row).
  Status Fit(const std::vector<std::vector<double>>& rows);

  /// Applies the fitted transform in place.
  void Transform(std::vector<double>* row) const;
  std::vector<double> Transformed(std::vector<double> row) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }
  bool fitted() const { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace ml
}  // namespace crowder

#endif  // CROWDER_ML_SCALER_H_
