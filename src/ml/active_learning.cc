#include "ml/active_learning.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace crowder {
namespace ml {

Result<ActiveLearningResult> RunActiveLearning(
    const std::vector<std::vector<double>>& features,
    const std::function<bool(size_t)>& oracle, const ActiveLearningOptions& options) {
  if (features.empty()) return Status::InvalidArgument("empty candidate pool");
  if (!oracle) return Status::InvalidArgument("oracle must be callable");
  if (options.initial_sample == 0 || options.batch_size == 0) {
    return Status::InvalidArgument("initial_sample and batch_size must be positive");
  }
  if (options.max_labels < options.initial_sample) {
    return Status::InvalidArgument("max_labels must cover the initial sample");
  }
  const size_t dim = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dim) return Status::InvalidArgument("ragged feature rows");
  }

  Rng rng(options.seed);
  ActiveLearningResult result;
  std::vector<char> is_labeled(features.size(), 0);
  std::vector<int> labels;  // aligned with result.labeled

  auto acquire = [&](size_t idx) {
    is_labeled[idx] = 1;
    result.labeled.push_back(idx);
    labels.push_back(oracle(idx) ? 1 : -1);
  };

  // ---- Seed sample; keep drawing until both classes are present. ----
  const size_t seed_n = std::min(options.initial_sample, features.size());
  for (size_t s : rng.SampleWithoutReplacement(features.size(), seed_n)) acquire(s);
  auto has_both = [&]() {
    bool pos = false;
    bool neg = false;
    for (int y : labels) (y == 1 ? pos : neg) = true;
    return pos && neg;
  };
  while (!has_both() && result.labeled.size() < options.max_labels &&
         result.labeled.size() < features.size()) {
    size_t idx = 0;
    do {
      idx = static_cast<size_t>(rng.Uniform(features.size()));
    } while (is_labeled[idx]);
    acquire(idx);
  }
  if (!has_both()) {
    return Status::Infeasible("label budget exhausted before seeing both classes");
  }

  // ---- Uncertainty-sampling rounds. ----
  auto retrain = [&]() -> Status {
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    x.reserve(result.labeled.size());
    for (size_t i = 0; i < result.labeled.size(); ++i) {
      x.push_back(features[result.labeled[i]]);
      y.push_back(labels[i]);
    }
    CROWDER_RETURN_NOT_OK(result.scaler.Fit(x));
    for (auto& row : x) result.scaler.Transform(&row);
    SvmOptions svm_options = options.svm;
    svm_options.seed = options.svm.seed + result.rounds;
    return result.model.Train(x, y, svm_options);
  };
  CROWDER_RETURN_NOT_OK(retrain());
  ++result.rounds;

  while (result.labeled.size() < options.max_labels &&
         result.labeled.size() < features.size()) {
    // Score all unlabeled rows; pick the batch with the smallest |margin|.
    std::vector<std::pair<double, size_t>> uncertainty;
    uncertainty.reserve(features.size() - result.labeled.size());
    for (size_t i = 0; i < features.size(); ++i) {
      if (is_labeled[i]) continue;
      const double score = result.model.Score(result.scaler.Transformed(features[i]));
      uncertainty.emplace_back(std::fabs(score), i);
    }
    if (uncertainty.empty()) break;
    const size_t take = std::min({options.batch_size,
                                  options.max_labels - result.labeled.size(),
                                  uncertainty.size()});
    std::partial_sort(uncertainty.begin(), uncertainty.begin() + static_cast<long>(take),
                      uncertainty.end());
    for (size_t b = 0; b < take; ++b) acquire(uncertainty[b].second);
    CROWDER_RETURN_NOT_OK(retrain());
    ++result.rounds;
  }

  result.scores.reserve(features.size());
  for (const auto& row : features) {
    result.scores.push_back(result.model.Score(result.scaler.Transformed(row)));
  }
  return result;
}

}  // namespace ml
}  // namespace crowder
