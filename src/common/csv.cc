#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace crowder {

int CsvTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// State machine over the raw text; emits rows of fields.
Result<std::vector<std::vector<std::string>>> ParseRows(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;  // doubled quote
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument("quote inside unquoted field at offset " +
                                         std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;
        break;
      case '\r':
        // Swallow; the following \n (if any) terminates the row.
        break;
      case '\n':
        if (field_started || !field.empty() || !row.empty()) {
          end_row();
        }
        // Bare newline on an empty row: skip blank lines.
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field at end of input");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text, bool has_header) {
  CROWDER_ASSIGN_OR_RETURN(auto rows, ParseRows(text));
  CsvTable table;
  if (rows.empty()) {
    if (has_header) return Status::InvalidArgument("CSV input has no header row");
    return table;
  }
  size_t start = 0;
  if (has_header) {
    table.header = std::move(rows[0]);
    start = 1;
  }
  const size_t want = has_header ? table.header.size() : rows[0].size();
  for (size_t i = start; i < rows.size(); ++i) {
    if (rows[i].size() != want) {
      return Status::InvalidArgument("row " + std::to_string(i) + " has " +
                                     std::to_string(rows[i].size()) + " fields, expected " +
                                     std::to_string(want));
    }
    table.rows.push_back(std::move(rows[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header);
}

std::string WriteCsv(const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  if (!header.empty()) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, header[i]);
    }
    out.push_back('\n');
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsv(header, rows);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace crowder
