// Minimal leveled logging plus CHECK/DCHECK invariants, in the style of
// arrow/util/logging.h. CHECK failures abort with a message; DCHECK compiles
// out in NDEBUG builds.
#ifndef CROWDER_COMMON_LOGGING_H_
#define CROWDER_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace crowder {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Global log threshold; messages below it are suppressed.
/// Default is kWarning so library code is quiet in tests and benches.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace crowder

#define CROWDER_LOG_INTERNAL(level) \
  ::crowder::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define CROWDER_LOG(severity) \
  CROWDER_LOG_INTERNAL(::crowder::LogLevel::k##severity)

/// Aborts the process with a diagnostic if `condition` is false.
#define CROWDER_CHECK(condition)                                       \
  if (!(condition))                                                    \
  CROWDER_LOG_INTERNAL(::crowder::LogLevel::kFatal)                    \
      << "Check failed: " #condition " "

#define CROWDER_CHECK_OP(op, a, b)                                        \
  CROWDER_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define CROWDER_CHECK_EQ(a, b) CROWDER_CHECK_OP(==, a, b)
#define CROWDER_CHECK_NE(a, b) CROWDER_CHECK_OP(!=, a, b)
#define CROWDER_CHECK_LT(a, b) CROWDER_CHECK_OP(<, a, b)
#define CROWDER_CHECK_LE(a, b) CROWDER_CHECK_OP(<=, a, b)
#define CROWDER_CHECK_GT(a, b) CROWDER_CHECK_OP(>, a, b)
#define CROWDER_CHECK_GE(a, b) CROWDER_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define CROWDER_DCHECK(condition) \
  while (false) CROWDER_CHECK(condition)
#define CROWDER_DCHECK_EQ(a, b) \
  while (false) CROWDER_CHECK_EQ(a, b)
#define CROWDER_DCHECK_LE(a, b) \
  while (false) CROWDER_CHECK_LE(a, b)
#define CROWDER_DCHECK_LT(a, b) \
  while (false) CROWDER_CHECK_LT(a, b)
#define CROWDER_DCHECK_GE(a, b) \
  while (false) CROWDER_CHECK_GE(a, b)
#else
#define CROWDER_DCHECK(condition) CROWDER_CHECK(condition)
#define CROWDER_DCHECK_EQ(a, b) CROWDER_CHECK_EQ(a, b)
#define CROWDER_DCHECK_LE(a, b) CROWDER_CHECK_LE(a, b)
#define CROWDER_DCHECK_LT(a, b) CROWDER_CHECK_LT(a, b)
#define CROWDER_DCHECK_GE(a, b) CROWDER_CHECK_GE(a, b)
#endif

#endif  // CROWDER_COMMON_LOGGING_H_
