#include "common/rng.h"

#include <cmath>

namespace crowder {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CROWDER_DCHECK(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CROWDER_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next64());
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  CROWDER_DCHECK(rate > 0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  CROWDER_DCHECK(n > 0);
  // Direct inversion over the harmonic CDF. O(n) per sample: acceptable for
  // the generator sizes used here (word pools of a few thousand entries).
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double u = UniformDouble() * norm;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  CROWDER_CHECK_LE(count, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first `count` entries are the sample.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CROWDER_DCHECK(w >= 0.0);
    total += w;
  }
  CROWDER_CHECK(total > 0.0) << "WeightedIndex requires positive total weight";
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t mix = Next64() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

}  // namespace crowder
