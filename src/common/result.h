// Result<T>: value-or-Status, in the style of arrow::Result. A function that
// can fail but otherwise produces a T returns Result<T>.
#ifndef CROWDER_COMMON_RESULT_H_
#define CROWDER_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace crowder {

/// \brief Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
///
/// Typical use:
/// \code
///   Result<Table> t = Table::FromCsv(path);
///   if (!t.ok()) return t.status();
///   Use(t.ValueOrDie());
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      // Programmer error: an OK status carries no value.
      std::cerr << "Result constructed from OK Status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if the Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the value; aborts if the Result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Alias matching arrow::Result spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if the Result holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }
  std::variant<Status, T> repr_;
};

}  // namespace crowder

/// Evaluates an expression returning Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define CROWDER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#define CROWDER_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CROWDER_ASSIGN_OR_RETURN_NAME(x, y) CROWDER_ASSIGN_OR_RETURN_CONCAT(x, y)

#define CROWDER_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CROWDER_ASSIGN_OR_RETURN_IMPL(                                              \
      CROWDER_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, rexpr)

#endif  // CROWDER_COMMON_RESULT_H_
