#include "common/histogram.h"

#include <algorithm>

namespace crowder {

uint32_t HistogramBuckets::Index(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  // Octave = bit width; within it, the kSubBuckets linear slices are indexed
  // by the bits just below the leading one.
  uint32_t bits = 0;
  uint64_t v = value;
  while (v >>= 1) ++bits;  // bits = floor(log2(value)) >= 4 here
  const uint32_t shift = bits - 4;  // 2^4 == kSubBuckets
  const uint32_t sub = static_cast<uint32_t>((value >> shift) & (kSubBuckets - 1));
  const uint32_t index = (bits - 3) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

uint64_t HistogramBuckets::UpperBound(uint32_t index) {
  if (index < kSubBuckets) return index;
  const uint32_t octave = index / kSubBuckets + 3;  // inverse of Index
  const uint32_t sub = index % kSubBuckets;
  const uint32_t shift = octave - 4;
  // Largest value with this (octave, sub): fill every bit below the slice.
  const uint64_t base = (1ULL << octave) | (static_cast<uint64_t>(sub) << shift);
  return base + ((1ULL << shift) - 1);
}

void Histogram::Record(uint64_t value) {
  ++buckets_[HistogramBuckets::Index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the quantile value, 1-based; q = 0 still needs the first value.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(HistogramBuckets::UpperBound(i), max_);
  }
  return max_;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    if (buckets_[i] != 0) out.emplace_back(HistogramBuckets::UpperBound(i), buckets_[i]);
  }
  return out;
}

ConcurrentHistogram::ConcurrentHistogram() : count_(0), sum_(0), min_(UINT64_MAX), max_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void ConcurrentHistogram::Record(uint64_t value) {
  buckets_[HistogramBuckets::Index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Monotone min/max: losing a race just retries against a tighter bound;
  // Record never waits on other writers beyond these bounded CAS retries.
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur && !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram out;
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    out.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count_ += out.buckets_[i];
  }
  // Derived scalars come from their own counters; count_ is re-derived from
  // the buckets so quantile ranks always see a self-consistent total.
  out.sum_ = sum_.load(std::memory_order_relaxed);
  out.min_ = min_.load(std::memory_order_relaxed);
  out.max_ = max_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace crowder
