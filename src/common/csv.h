// A small RFC-4180-ish CSV reader/writer: quoted fields, embedded commas,
// doubled quotes, and both \n and \r\n row terminators. Used for dataset
// import/export so users can run CrowdER on their own files.
#ifndef CROWDER_COMMON_CSV_H_
#define CROWDER_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace crowder {

/// \brief One parsed CSV table: a header row plus data rows, all strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a column by name, or -1 if absent.
  int ColumnIndex(std::string_view name) const;
};

/// \brief Parses CSV text. When `has_header` is true the first row becomes
/// CsvTable::header. Rows whose field count differs from the header produce
/// an InvalidArgument error (column mismatch is almost always data corruption).
Result<CsvTable> ParseCsv(std::string_view text, bool has_header = true);

/// \brief Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true);

/// \brief Serializes rows to CSV, quoting only when needed.
std::string WriteCsv(const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

/// \brief Writes a CSV file; creates/truncates `path`.
Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace crowder

#endif  // CROWDER_COMMON_CSV_H_
