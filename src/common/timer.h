// Wall-clock timer for benchmark harnesses.
#ifndef CROWDER_COMMON_TIMER_H_
#define CROWDER_COMMON_TIMER_H_

#include <chrono>

namespace crowder {

/// \brief Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowder

#endif  // CROWDER_COMMON_TIMER_H_
