// Status: lightweight error propagation without exceptions, in the style of
// arrow::Status / rocksdb::Status. Functions that can fail return Status (or
// Result<T>, see result.h); success is the default-constructed OK status.
#ifndef CROWDER_COMMON_STATUS_H_
#define CROWDER_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace crowder {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kInfeasible = 8,  // LP/ILP: no feasible solution
  kUnbounded = 9,   // LP: objective unbounded
  kDataLoss = 10,   // recorded data truncated or inconsistent (vote-log replay)
};

/// \brief Returns a human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK (cheap, no allocation) or an error code
/// with a message.
///
/// Status is cheaply copyable; the error state is held behind a shared
/// pointer. Use the factory functions (Status::InvalidArgument(...)) rather
/// than constructing codes directly.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const;

  /// \brief Full human-readable rendering, e.g. "InvalidArgument: k must be >= 2".
  std::string ToString() const;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsUnbounded() const { return code() == StatusCode::kUnbounded; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace crowder

/// Propagates a non-OK Status to the caller.
#define CROWDER_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::crowder::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // CROWDER_COMMON_STATUS_H_
