#include "common/status.h"

namespace crowder {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return state_ ? state_->msg : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace crowder
