// Deterministic, platform-stable random number generation.
//
// Every stochastic component in CrowdER (data generators, worker models, the
// Random HIT baseline, SVM training-set sampling) draws from an explicit Rng
// seeded by the caller, so experiments are reproducible bit-for-bit. We avoid
// std:: distributions because their outputs differ across standard library
// implementations; xoshiro256++ plus hand-rolled helpers are stable anywhere.
#ifndef CROWDER_COMMON_RNG_H_
#define CROWDER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace crowder {

/// \brief SplitMix64: used to expand a 64-bit seed into xoshiro state, and as
/// a standalone mixing function for stable hashing of seeds.
uint64_t SplitMix64(uint64_t* state);

/// \brief xoshiro256++ pseudo-random generator with convenience helpers.
///
/// Not cryptographically secure; plenty for simulation. All helpers are
/// inclusive/exclusive exactly as documented.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(uint64_t seed = 0xC0FFEE);

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire-style) so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic; caches the spare value).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Zipf-distributed integer in [0, n) with exponent s (> 0): used by the
  /// synthetic data generators to produce realistic token frequency skew.
  /// Sampled by inversion on the precomputed CDF owned by the caller via
  /// MakeZipfCdf, or directly (O(n)) for small n with this helper.
  uint64_t Zipf(uint64_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    CROWDER_DCHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n), in random
  /// order. O(n) memory; fine for the dataset sizes used here.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Picks one element index according to non-negative weights (sum > 0).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; children with distinct salts are
  /// statistically independent streams. Useful to give each simulated worker
  /// its own stream without coupling to call order.
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace crowder

#endif  // CROWDER_COMMON_RNG_H_
