// Small string helpers shared across modules.
#ifndef CROWDER_COMMON_STRING_UTIL_H_
#define CROWDER_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace crowder {

/// \brief Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Splits `s` on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief printf-style float formatting helper: fixed `digits` decimals.
std::string FormatDouble(double value, int digits);

/// \brief Renders 12345 as "12,345" for table output.
std::string WithThousands(long long value);

/// \brief Parses a byte size with an optional binary-unit suffix, upper- or
/// lowercase: "4096" -> 4096, "64K" == "64k" -> 65536, "256M" -> 2^28,
/// "1G" -> 2^30. Errors (InvalidArgument) on an empty string, a missing
/// leading number ("K"), an unknown or multi-letter suffix ("10KB"), a
/// number that does not fit ("999999999999999999999"), and a value whose
/// multiplied result overflows 64 bits.
Result<uint64_t> ParseByteSize(const std::string& text);

}  // namespace crowder

#endif  // CROWDER_COMMON_STRING_UTIL_H_
