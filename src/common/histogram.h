// Fixed log-bucket latency histograms for the serving and workflow layers.
//
// Two types share one bucket layout (HistogramBuckets):
//
//  * Histogram — a plain, copyable value type. Record/Merge/quantiles with
//    no synchronization; the form results carry (WorkflowResult,
//    BENCH_*.json) and the form tests reason about.
//  * ConcurrentHistogram — the same buckets behind relaxed atomics, so any
//    number of threads Record() while readers take Snapshot()s without
//    locks (the service's query-latency path must never serialize readers
//    against ingest). A snapshot is a plain Histogram.
//
// The layout is HdrHistogram-flavoured: values are bucketed by magnitude
// (floor(log2)) with `kSubBuckets` linear sub-buckets per octave, giving a
// bounded relative error of 1/kSubBuckets (6.25%) at every scale — fixed
// memory, no allocation on Record, mergeable by element-wise addition.
// Values are dimensionless uint64s; callers pick the unit (the serving
// stack records microseconds).
#ifndef CROWDER_COMMON_HISTOGRAM_H_
#define CROWDER_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crowder {

/// \brief The shared bucket layout: 64 octaves x kSubBuckets linear
/// sub-buckets. Bucket index and representative value are pure functions,
/// identical for both histogram types (and pinned by histogram_test).
struct HistogramBuckets {
  /// Linear sub-buckets per power of two; relative error <= 1/kSubBuckets.
  static constexpr uint32_t kSubBuckets = 16;
  /// Total buckets: values 0..kSubBuckets-1 map 1:1 into the first octave's
  /// sub-buckets, every further octave contributes kSubBuckets buckets.
  static constexpr uint32_t kNumBuckets = 64 * kSubBuckets;

  /// \brief Bucket index of `value` (exact for values < kSubBuckets).
  static uint32_t Index(uint64_t value);

  /// \brief Upper-bound representative of bucket `index`: the largest value
  /// the bucket holds, so quantiles never under-report a latency.
  static uint64_t UpperBound(uint32_t index);
};

/// \brief Plain (single-writer) log-bucket histogram: copyable, mergeable,
/// with count/sum/min/max and quantile queries. Not thread-safe — use
/// ConcurrentHistogram when multiple threads record.
class Histogram {
 public:
  /// \brief Files one value.
  void Record(uint64_t value);

  /// \brief Element-wise addition of another histogram (same fixed layout).
  void Merge(const Histogram& other);

  /// \brief Values recorded.
  uint64_t count() const { return count_; }
  /// \brief Sum of recorded values (saturating add not needed at realistic
  /// latency scales).
  uint64_t sum() const { return sum_; }
  /// \brief Smallest recorded value (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  /// \brief Largest recorded value (0 when empty).
  uint64_t max() const { return max_; }
  /// \brief Mean of recorded values (0 when empty).
  double Mean() const;

  /// \brief Value at quantile `q` in [0, 1]: the bucket upper bound at the
  /// smallest rank >= q * count, clamped to the observed max (0 when
  /// empty). ValueAtQuantile(0.5) is the p50, (0.99) the p99, (0.999) the
  /// p999.
  uint64_t ValueAtQuantile(double q) const;

  /// \brief Occupied-bucket view for export: (upper_bound, count) pairs in
  /// ascending value order.
  std::vector<std::pair<uint64_t, uint64_t>> NonEmptyBuckets() const;

 private:
  friend class ConcurrentHistogram;
  uint64_t buckets_[HistogramBuckets::kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// \brief Multi-writer, lock-free histogram: Record() from any thread
/// (relaxed atomic adds; no CAS loops, no locks), Snapshot() from any thread
/// without stopping writers. A snapshot taken concurrently with writers is a
/// consistent-enough sum: every counter is monotone, so quantiles over it
/// are exact for all values recorded strictly before the snapshot began and
/// may include a subset of in-flight ones — the standard telemetry contract.
/// min/max converge via compare-exchange but never block Record.
class ConcurrentHistogram {
 public:
  /// \brief Starts empty (all counters zero).
  ConcurrentHistogram();

  /// \brief Files one value. Wait-free (one relaxed fetch_add per counter).
  void Record(uint64_t value);

  /// \brief Copies the counters into a plain Histogram.
  Histogram Snapshot() const;

  /// \brief Values recorded so far (relaxed read).
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[HistogramBuckets::kNumBuckets];
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
};

}  // namespace crowder

#endif  // CROWDER_COMMON_HISTOGRAM_H_
