#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace crowder {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string WithThousands(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(value) : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}


Result<uint64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty byte size");
  size_t digits = 0;
  while (digits < text.size() && std::isdigit(static_cast<unsigned char>(text[digits]))) {
    ++digits;
  }
  if (digits == 0) return Status::InvalidArgument("byte size must start with digits: " + text);
  uint64_t value = 0;
  try {
    value = std::stoull(text.substr(0, digits));
  } catch (const std::exception&) {
    return Status::InvalidArgument("unparseable byte size: " + text);
  }
  const std::string suffix = text.substr(digits);
  uint64_t multiplier = 1;
  if (suffix == "K" || suffix == "k") {
    multiplier = 1ULL << 10;
  } else if (suffix == "M" || suffix == "m") {
    multiplier = 1ULL << 20;
  } else if (suffix == "G" || suffix == "g") {
    multiplier = 1ULL << 30;
  } else if (!suffix.empty()) {
    return Status::InvalidArgument("unknown byte-size suffix '" + suffix +
                                   "' (use K/M/G, either case)");
  }
  uint64_t bytes = 0;
  if (__builtin_mul_overflow(value, multiplier, &bytes)) {
    return Status::InvalidArgument("byte size overflows 64 bits: " + text);
  }
  return bytes;
}

}  // namespace crowder
